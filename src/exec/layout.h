#ifndef POPDB_EXEC_LAYOUT_H_
#define POPDB_EXEC_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "exec/expr.h"

namespace popdb {

struct RowBatch;

/// Set of query-table ids as a bitmask (queries join at most 64 tables).
using TableSet = uint64_t;

inline TableSet TableBit(int table_id) { return TableSet{1} << table_id; }
inline bool ContainsTable(TableSet set, int table_id) {
  return (set & TableBit(table_id)) != 0;
}
inline int PopCount(TableSet set) { return __builtin_popcountll(set); }

/// The engine's canonical row layout rule: an operator producing rows for
/// table set S outputs the concatenation of each member table's columns in
/// increasing table-id order. This makes the layout a pure function of the
/// table set, so plans, temporary materialized views and re-optimized plans
/// all agree on column positions without tracking projections.
class RowLayout {
 public:
  RowLayout() = default;

  /// Builds the layout for `set`; `table_widths[tid]` is the column count
  /// of query table `tid`.
  RowLayout(TableSet set, const std::vector<int>& table_widths);

  TableSet table_set() const { return set_; }
  int width() const { return width_; }

  /// Position of `col` inside a row with this layout; -1 if the table is
  /// not part of the layout.
  int Resolve(const ColRef& col) const;

 private:
  TableSet set_ = 0;
  int width_ = 0;
  // offsets_[i] pairs with table_ids_[i].
  std::vector<int> table_ids_;
  std::vector<int> offsets_;
};

/// Precomputed instructions for merging a left row and a right row into a
/// canonical row for the union of their table sets.
struct MergeSpec {
  /// For each output position: (from_left, source position).
  std::vector<std::pair<bool, int>> sources;

  static MergeSpec Make(const RowLayout& left, const RowLayout& right,
                        const RowLayout& out,
                        const std::vector<int>& table_widths);

  Row Merge(const Row& left, const Row& right) const;

  /// Appends the merge of the `left_row`-th active row of `left` with
  /// `right` directly to `out`'s columns (which must already be sized to
  /// `sources.size()` via Reset), skipping the intermediate row-major
  /// materialization of Merge.
  void MergeBatchInto(const RowBatch& left, int64_t left_row,
                      const Row& right, RowBatch* out) const;
};

}  // namespace popdb

#endif  // POPDB_EXEC_LAYOUT_H_
