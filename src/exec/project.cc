#include "exec/project.h"

namespace popdb {

ExecStatus ProjectOp::NextImpl(ExecContext* ctx, Row* out) {
  Row row;
  const ExecStatus s = child_->Next(ctx, &row);
  if (s != ExecStatus::kRow) {
    return s;
  }
  ++ctx->work;
  out->clear();
  out->reserve(positions_.size());
  for (int pos : positions_) out->push_back(row[static_cast<size_t>(pos)]);
  return ExecStatus::kRow;
}

ExecStatus FilterOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    const ExecStatus s = child_->Next(ctx, out);
    if (s != ExecStatus::kRow) {
      return s;
    }
    ++ctx->work;
    bool pass = true;
    for (const ResolvedPredicate& p : preds_) {
      if (!EvalPredicate(p, *out)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      return ExecStatus::kRow;
    }
  }
}

}  // namespace popdb
