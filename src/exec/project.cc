#include "exec/project.h"

namespace popdb {

ExecStatus ProjectOp::NextImpl(ExecContext* ctx, Row* out) {
  Row row;
  const ExecStatus s = child_->Next(ctx, &row);
  if (s != ExecStatus::kRow) {
    return s;
  }
  ++ctx->work;
  out->clear();
  out->reserve(positions_.size());
  for (int pos : positions_) out->push_back(row[static_cast<size_t>(pos)]);
  return ExecStatus::kRow;
}

ExecStatus ProjectOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  const ExecStatus s = child_->NextBatch(ctx, &in_batch_);
  if (s != ExecStatus::kRow) return s;
  if (move_src_.empty() && !positions_.empty()) {
    // A source column's last use can move its values out of the input batch.
    move_src_.assign(positions_.size(), 1);
    for (size_t j = 0; j < positions_.size(); ++j) {
      for (size_t k = j + 1; k < positions_.size(); ++k) {
        if (positions_[k] == positions_[j]) move_src_[j] = 0;
      }
    }
  }
  const int64_t n = in_batch_.ActiveRows();
  ctx->work += n;
  out->Reset(static_cast<int>(positions_.size()));
  for (size_t j = 0; j < positions_.size(); ++j) {
    std::vector<Value>& src = in_batch_.cols[static_cast<size_t>(positions_[j])];
    if (move_src_[j] != 0) {
      for (int64_t i = 0; i < n; ++i) {
        out->PutMove(
            static_cast<int>(j), i,
            std::move(src[static_cast<size_t>(in_batch_.RawIndex(i))]));
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        out->PutCopy(static_cast<int>(j), i,
                     src[static_cast<size_t>(in_batch_.RawIndex(i))]);
      }
    }
  }
  out->num_rows = n;
  return ExecStatus::kRow;
}

ExecStatus FilterOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    const ExecStatus s = child_->Next(ctx, out);
    if (s != ExecStatus::kRow) {
      return s;
    }
    ++ctx->work;
    bool pass = true;
    for (const ResolvedPredicate& p : preds_) {
      if (!EvalPredicate(p, *out)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      return ExecStatus::kRow;
    }
  }
}

ExecStatus FilterOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  // Vectorized filtering narrows the batch's selection vector in place:
  // nothing is copied, the surviving set is exactly what per-row
  // short-circuit evaluation keeps.
  while (true) {
    const ExecStatus s = child_->NextBatch(ctx, out);
    if (s != ExecStatus::kRow) return s;
    ctx->work += out->ActiveRows();
    out->EnsureSel();
    for (const ResolvedPredicate& p : preds_) {
      if (out->sel.empty()) break;
      EvalPredicateColumn(p, out->cols[static_cast<size_t>(p.pos)], &out->sel);
    }
    if (!out->sel.empty()) return ExecStatus::kRow;
  }
}

}  // namespace popdb
