#ifndef POPDB_EXEC_BATCH_H_
#define POPDB_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "exec/layout.h"

namespace popdb {

/// Caps a per-batch row count so the payload (`width` columns of Value)
/// stays within a fixed byte budget. Wide batches otherwise outgrow the
/// cache between fill and consumption and the gather/scatter loops of
/// vectorized operators go memory-bound; narrow batches keep the full
/// count. Never returns more than `rows`.
inline int64_t CapBatchRowsForWidth(int64_t rows, int width) {
  if (width <= 0) return rows;
  constexpr int64_t kBatchTargetBytes = 160 * 1024;
  constexpr int64_t kMinWideRows = 64;
  const int64_t cap = kBatchTargetBytes /
                      (static_cast<int64_t>(width) *
                       static_cast<int64_t>(sizeof(Value)));
  const int64_t scaled = cap > kMinWideRows ? cap : kMinWideRows;
  return scaled < rows ? scaled : rows;
}

/// Column-oriented batch of rows exchanged between operators in vectorized
/// execution (ExecContext::batch_rows > 1). Values are stored per column
/// (`cols[c][r]`), and an optional selection vector marks the active subset
/// without moving data: filters narrow `sel` in place, so a batch flows
/// through a pipeline with one copy at the producer.
///
/// Invariants:
///  - without a selection (`use_sel == false`) the active rows are raw rows
///    [0, num_rows);
///  - with a selection, `sel` lists active raw-row indices in ascending
///    order (a subsequence of [0, num_rows));
///  - columns may hold live elements past `num_rows`: Clear/Reset keep them
///    as a reuse pool so refilling a batch assigns over prior elements
///    (reusing their heap storage, e.g. string buffers) instead of
///    destroying and reallocating per batch. Consumers must therefore
///    iterate active indices only, never raw column sizes.
struct RowBatch {
  std::vector<std::vector<Value>> cols;
  std::vector<int32_t> sel;
  bool use_sel = false;
  int64_t num_rows = 0;
  /// Expected rows per fill (the producer's batch target), set by the
  /// NextBatch wrapper. Reset/AppendRow reserve this much column capacity
  /// up front so a fresh batch does one allocation per column instead of
  /// doubling growth — short executions never amortize the doubling.
  int64_t reserve_hint = 0;

  int width() const { return static_cast<int>(cols.size()); }

  /// Number of active (selected) rows.
  int64_t ActiveRows() const {
    return use_sel ? static_cast<int64_t>(sel.size()) : num_rows;
  }

  /// Raw row index of the i-th active row.
  int32_t RawIndex(int64_t i) const {
    return use_sel ? sel[static_cast<size_t>(i)] : static_cast<int32_t>(i);
  }

  /// Value at `col` for the i-th active row.
  const Value& At(int col, int64_t i) const {
    return cols[static_cast<size_t>(col)][static_cast<size_t>(RawIndex(i))];
  }

  /// Drops all rows and the selection but keeps column capacity; resizes to
  /// `width` columns (pass the producer's output width).
  void Reset(int width);

  /// Like Reset but keeps the current column count (width learned from the
  /// first appended row).
  void Clear();

  /// Appends a copy of `row` as a new active raw row. On the first append
  /// into an empty batch the column count adapts to the row width.
  void AppendRow(const Row& row);

  /// Appends `row` by moving its values.
  void AppendRowMove(Row&& row);

  /// Writes `v` at (col, row) where `row` is the next unwritten raw row of
  /// that column: assigns over a pooled element when one exists, appends
  /// otherwise. Producers filling column-wise use these and then set
  /// `num_rows` themselves.
  void PutCopy(int col, int64_t row, const Value& v) {
    std::vector<Value>& dst = cols[static_cast<size_t>(col)];
    if (static_cast<size_t>(row) < dst.size()) {
      dst[static_cast<size_t>(row)].AssignFrom(v);
    } else {
      dst.push_back(v);
    }
  }
  void PutMove(int col, int64_t row, Value&& v) {
    std::vector<Value>& dst = cols[static_cast<size_t>(col)];
    if (static_cast<size_t>(row) < dst.size()) {
      dst[static_cast<size_t>(row)].AssignFrom(std::move(v));
    } else {
      dst.push_back(std::move(v));
    }
  }

  /// Materializes the i-th active row into `*out` (copying values).
  void MaterializeRow(int64_t i, Row* out) const;

  /// Moves every active row into `*out` (row-major), then clears the batch.
  void MoveRowsInto(std::vector<Row>* out);

  /// Keeps only the first `k` active rows.
  void TruncateActive(int64_t k);

  /// Materializes an explicit selection vector (identity if none existed)
  /// so callers can narrow it in place.
  void EnsureSel();

 private:
  /// Grows each column's capacity to `reserve_hint` (never shrinks).
  void ApplyReserveHint();
};

}  // namespace popdb

#endif  // POPDB_EXEC_BATCH_H_
