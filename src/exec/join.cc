#include "exec/join.h"

#include <algorithm>
#include <atomic>

#include "common/status.h"
#include "exec/parallel.h"

namespace popdb {

// ---------------------------------------------------------------- NljnOp

NljnOp::NljnOp(std::unique_ptr<Operator> outer, InnerAccess inner,
               MergeSpec merge, TableSet table_set)
    : Operator(table_set),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      merge_(std::move(merge)) {}

const Row& NljnOp::InnerRow(int64_t rid) const {
  if (inner_.mv_rows != nullptr) {
    return (*inner_.mv_rows)[static_cast<size_t>(rid)];
  }
  return inner_.snapshot.row(rid);
}

int64_t NljnOp::NumInnerRows() const {
  if (inner_.mv_rows != nullptr) {
    return static_cast<int64_t>(inner_.mv_rows->size());
  }
  return inner_.snapshot.num_rows();
}

bool NljnOp::InnerRowVisible(int64_t rid) const {
  if (inner_.mv_rows != nullptr) return true;
  return rid < inner_.snapshot.num_rows() && inner_.snapshot.alive(rid);
}

ExecStatus NljnOp::OpenImpl(ExecContext* ctx) {
  if (inner_.mv_rows == nullptr && !inner_.snapshot.valid() &&
      inner_.table != nullptr) {
    inner_.snapshot = inner_.table->Snapshot();
  }
  outer_valid_ = false;
  outer_batch_valid_ = false;
  outer_idx_ = 0;
  return outer_->Open(ctx);
}

void NljnOp::StartProbe(ExecContext* ctx, const Value* index_key) {
  ++ctx->work;
  ++mutable_stats().loops;
  if (inner_.index != nullptr) {
    POPDB_DCHECK(index_key != nullptr);
    inner_.index->ProbeInto(*index_key, &index_candidates_);
    candidate_pos_ = 0;
  } else {
    scan_rid_ = 0;
  }
}

ExecStatus NljnOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    if (!outer_valid_) {
      const ExecStatus s = outer_->Next(ctx, &outer_row_);
      if (s != ExecStatus::kRow) {
        return s;
      }
      outer_valid_ = true;
      StartProbe(ctx, inner_.index != nullptr
                          ? &outer_row_[static_cast<size_t>(
                                inner_.join_conds[0].outer_pos)]
                          : nullptr);
    }
    // Iterate candidate inner rows for the current outer row.
    while (true) {
      if (ctx->CancelPending()) return ExecStatus::kCancelled;
      int64_t rid;
      if (inner_.index != nullptr) {
        if (candidate_pos_ >= index_candidates_.size()) break;
        rid = index_candidates_[candidate_pos_++];
        if (!InnerRowVisible(rid)) continue;
      } else {
        if (scan_rid_ >= NumInnerRows()) break;
        rid = scan_rid_++;
        if (!InnerRowVisible(rid)) continue;
      }
      ++ctx->work;
      const Row& inner_row = InnerRow(rid);
      bool pass = true;
      // All conditions are evaluated even on the index path: superset
      // postings mean a candidate may no longer hold the probed value in
      // the pinned snapshot.
      for (size_t j = 0; j < inner_.join_conds.size(); ++j) {
        const InnerAccess::JoinCond& jc = inner_.join_conds[j];
        if (outer_row_[static_cast<size_t>(jc.outer_pos)] !=
            inner_row[static_cast<size_t>(jc.inner_pos)]) {
          pass = false;
          break;
        }
      }
      if (pass) {
        for (const ResolvedPredicate& p : inner_.local_preds) {
          if (!EvalPredicate(p, inner_row)) {
            pass = false;
            break;
          }
        }
      }
      if (pass) {
        *out = merge_.Merge(outer_row_, inner_row);
        return ExecStatus::kRow;
      }
    }
    outer_valid_ = false;  // Exhausted inner candidates; pull next outer row.
  }
}

ExecStatus NljnOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  // Vectorized outer: pull outer batches, probe each active row with the
  // same per-row work/loop accounting as the row path, and emit merged rows
  // until the output batch fills. The current outer row is read in place
  // from the held batch (`outer_idx_`) — never materialized row-major. An
  // outer row's candidate cursor survives across output batches; an abort
  // from the outer subtree can only arrive once the held batch is fully
  // probed, so every match the row engine would have streamed is flushed
  // ahead of the abort status.
  const int64_t target =
      BatchTarget(ctx, static_cast<int>(merge_.sources.size()));
  out->Reset(static_cast<int>(merge_.sources.size()));
  while (true) {
    if (!outer_valid_) {
      if (!outer_batch_valid_ || outer_idx_ >= outer_batch_.ActiveRows()) {
        const ExecStatus s = outer_->NextBatch(ctx, &outer_batch_);
        if (s != ExecStatus::kRow) {
          outer_batch_valid_ = false;
          return FlushOrStatus(out, s);
        }
        outer_batch_valid_ = true;
        outer_idx_ = 0;
      }
      outer_valid_ = true;
      StartProbe(ctx,
                 inner_.index != nullptr
                     ? &outer_batch_.At(inner_.join_conds[0].outer_pos,
                                        outer_idx_)
                     : nullptr);
    }
    while (true) {
      if (out->num_rows >= target) return ExecStatus::kRow;
      if (ctx->CancelPending()) {
        return FlushOrStatus(out, ExecStatus::kCancelled);
      }
      int64_t rid;
      if (inner_.index != nullptr) {
        if (candidate_pos_ >= index_candidates_.size()) break;
        rid = index_candidates_[candidate_pos_++];
        if (!InnerRowVisible(rid)) continue;
      } else {
        if (scan_rid_ >= NumInnerRows()) break;
        rid = scan_rid_++;
        if (!InnerRowVisible(rid)) continue;
      }
      ++ctx->work;
      const Row& inner_row = InnerRow(rid);
      bool pass = true;
      for (size_t j = 0; j < inner_.join_conds.size(); ++j) {
        const InnerAccess::JoinCond& jc = inner_.join_conds[j];
        if (outer_batch_.At(jc.outer_pos, outer_idx_) !=
            inner_row[static_cast<size_t>(jc.inner_pos)]) {
          pass = false;
          break;
        }
      }
      if (pass) {
        for (const ResolvedPredicate& p : inner_.local_preds) {
          if (!EvalPredicate(p, inner_row)) {
            pass = false;
            break;
          }
        }
      }
      if (pass) merge_.MergeBatchInto(outer_batch_, outer_idx_, inner_row, out);
    }
    outer_valid_ = false;  // Candidates exhausted; next outer row.
    ++outer_idx_;
  }
}

void NljnOp::CloseImpl(ExecContext* ctx) { outer_->Close(ctx); }

// ---------------------------------------------------------------- HsjnOp

HsjnOp::HsjnOp(std::unique_ptr<Operator> probe,
               std::unique_ptr<Operator> build, std::vector<int> probe_keys,
               std::vector<int> build_keys, MergeSpec merge,
               TableSet table_set, CheckSpec build_check,
               bool offer_build_for_reuse)
    : Operator(table_set),
      probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      merge_(std::move(merge)),
      build_check_(build_check),
      offer_build_for_reuse_(offer_build_for_reuse) {}

Row HsjnOp::BuildKey(const Row& row) const {
  Row key;
  key.reserve(build_keys_.size());
  for (int pos : build_keys_) key.push_back(row[static_cast<size_t>(pos)]);
  return key;
}

Row HsjnOp::ProbeKey(const Row& row) const {
  Row key;
  key.reserve(probe_keys_.size());
  for (int pos : probe_keys_) key.push_back(row[static_cast<size_t>(pos)]);
  return key;
}

ExecStatus HsjnOp::OpenImpl(ExecContext* ctx) {
  ctx->materializers.push_back(this);
  ExecStatus s = build_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  s = DrainChildRows(build_.get(), ctx, &build_rows_);
  if (s != ExecStatus::kEof) return s;
  build_->Close(ctx);
  build_complete_ = true;

  if (build_check_.enabled) {
    const double card = static_cast<double>(build_rows_.size());
    const bool violated = card < build_check_.lo || card > build_check_.hi;
    CheckEvent ev;
    ev.edge_set = build_check_.edge_set;
    ev.flavor = build_check_.flavor;
    ev.site = CheckSite::kHsjnBuild;
    ev.work_first = ctx->work;
    ev.work_eval = ctx->work;
    ev.count = static_cast<int64_t>(build_rows_.size());
    ev.fired = violated;
    ctx->check_events.push_back(ev);
    TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                      "exec", "count", ev.count);
    if (violated && !build_check_.observe_only) {
      ctx->reopt.triggered = true;
      ctx->reopt.edge_set = build_check_.edge_set;
      ctx->reopt.observed_rows = static_cast<int64_t>(build_rows_.size());
      ctx->reopt.exact = true;
      ctx->reopt.flavor = build_check_.flavor;
      ctx->reopt.check_lo = build_check_.lo;
      ctx->reopt.check_hi = build_check_.hi;
      return ExecStatus::kReoptimize;
    }
  }

  if (static_cast<int64_t>(build_rows_.size()) <= ctx->mem_rows) {
    // Streaming in-memory mode.
    in_memory_mode_ = true;
    partitioned_ = ctx->tasks != nullptr && ctx->dop > 1 &&
                   static_cast<int64_t>(build_rows_.size()) >=
                       kMinParallelBuildRows;
    if (partitioned_) {
      ParallelBuild(ctx);
    } else {
      map_.reserve(build_rows_.size());
      for (size_t i = 0; i < build_rows_.size(); ++i) {
        map_[BuildKey(build_rows_[i])].push_back(i);
      }
    }
    matches_ = nullptr;
    return probe_->Open(ctx);
  }

  // Build exceeds memory: materialize the probe side and join with
  // recursive partitioning.
  in_memory_mode_ = false;
  s = probe_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  std::vector<Row> probe_rows;
  s = DrainChildRows(probe_.get(), ctx, &probe_rows);
  if (s != ExecStatus::kEof) return s;
  probe_->Close(ctx);
  // Join from a copy so build_rows_ stays harvestable.
  std::vector<Row> build_copy = build_rows_;
  return Join(ctx, &build_copy, &probe_rows, 0);
}

void HsjnOp::ParallelBuild(ExecContext* ctx) {
  const size_t n = build_rows_.size();
  const int workers = std::max(1, ctx->dop);
  // Phase 1: per-thread insert buffers. Each worker hashes a contiguous
  // slice of the build side into per-partition row-index lists; nothing is
  // shared between workers.
  std::vector<std::vector<std::vector<size_t>>> buffers(
      static_cast<size_t>(workers),
      std::vector<std::vector<size_t>>(kBuildPartitions));
  TaskGroup::Run(ctx->tasks, workers, [&](int w) {
    const size_t lo = n * static_cast<size_t>(w) /
                      static_cast<size_t>(workers);
    const size_t hi = n * static_cast<size_t>(w + 1) /
                      static_cast<size_t>(workers);
    std::vector<std::vector<size_t>>& mine =
        buffers[static_cast<size_t>(w)];
    for (size_t i = lo; i < hi; ++i) {
      const size_t p =
          HashRow(BuildKey(build_rows_[i])) & (kBuildPartitions - 1);
      mine[p].push_back(i);
    }
  });
  // Phase 2: partitions are claimed dynamically; each partition map is
  // filled walking the insert buffers in worker order (= ascending
  // build-row index), preserving the serial per-key match order.
  part_maps_.assign(kBuildPartitions, KeyMap{});
  std::atomic<int> next_part{0};
  TaskGroup::Run(ctx->tasks, workers, [&](int) {
    while (true) {
      const int p = next_part.fetch_add(1, std::memory_order_relaxed);
      if (p >= kBuildPartitions) break;
      KeyMap& map = part_maps_[static_cast<size_t>(p)];
      for (int w = 0; w < workers; ++w) {
        for (size_t i :
             buffers[static_cast<size_t>(w)][static_cast<size_t>(p)]) {
          map[BuildKey(build_rows_[i])].push_back(i);
        }
      }
    }
  });
}

ExecStatus HsjnOp::Join(ExecContext* ctx, std::vector<Row>* build,
                        std::vector<Row>* probe, int depth) {
  if (static_cast<int64_t>(build->size()) <= ctx->mem_rows || depth > 8) {
    if (depth > 0) ++mutable_stats().partitions;
    KeyMap map;
    map.reserve(build->size());
    for (size_t i = 0; i < build->size(); ++i) {
      map[BuildKey((*build)[i])].push_back(i);
    }
    for (const Row& prow : *probe) {
      if (ctx->CancelPending()) return ExecStatus::kCancelled;
      ++ctx->work;
      auto it = map.find(ProbeKey(prow));
      if (it == map.end()) continue;
      for (size_t bi : it->second) {
        output_.push_back(merge_.Merge(prow, (*build)[bi]));
      }
    }
    return ExecStatus::kOk;
  }
  // One extra partitioning pass over both inputs (a "stage" in the paper's
  // multi-stage hash join terminology).
  ++mutable_stats().spills;
  std::vector<std::vector<Row>> bparts(kFanOut), pparts(kFanOut);
  const uint64_t salt = 0x9e3779b9u * static_cast<uint64_t>(depth + 1);
  for (Row& r : *build) {
    ++ctx->work;
    const size_t h = (HashRow(BuildKey(r)) ^ salt) % kFanOut;
    bparts[h].push_back(std::move(r));
  }
  for (Row& r : *probe) {
    ++ctx->work;
    const size_t h = (HashRow(ProbeKey(r)) ^ salt) % kFanOut;
    pparts[h].push_back(std::move(r));
  }
  build->clear();
  probe->clear();
  for (int p = 0; p < kFanOut; ++p) {
    const ExecStatus s = Join(ctx, &bparts[p], &pparts[p], depth + 1);
    if (s != ExecStatus::kOk) return s;
  }
  return ExecStatus::kOk;
}

ExecStatus HsjnOp::NextImpl(ExecContext* ctx, Row* out) {
  if (in_memory_mode_) {
    while (true) {
      if (ctx->CancelPending()) return ExecStatus::kCancelled;
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        *out = merge_.Merge(probe_row_, build_rows_[(*matches_)[match_pos_]]);
        ++match_pos_;
        return ExecStatus::kRow;
      }
      const ExecStatus s = probe_->Next(ctx, &probe_row_);
      if (s != ExecStatus::kRow) {
        return s;
      }
      ++ctx->work;
      const Row key = ProbeKey(probe_row_);
      const KeyMap& map =
          partitioned_
              ? part_maps_[HashRow(key) & (kBuildPartitions - 1)]
              : map_;
      auto it = map.find(key);
      if (it == map.end()) {
        matches_ = nullptr;
        continue;
      }
      matches_ = &it->second;
      match_pos_ = 0;
    }
  }
  if (next_out_ < output_.size()) {
    *out = output_[next_out_++];
    return ExecStatus::kRow;
  }
  return ExecStatus::kEof;
}

ExecStatus HsjnOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (!in_memory_mode_) {
    // Spill mode: serve the precomputed join output in slices, moving rows
    // into the batch (output_ is never harvested).
    const int64_t target =
        BatchTarget(ctx, static_cast<int>(merge_.sources.size()));
    out->Clear();
    while (next_out_ < output_.size() && out->num_rows < target) {
      out->AppendRowMove(std::move(output_[next_out_++]));
    }
    return out->num_rows > 0 ? ExecStatus::kRow : ExecStatus::kEof;
  }
  // Streaming in-memory probe: one probe batch in, all its matches out.
  // The output batch is gathered column-wise straight from the probe batch
  // and the build rows (no per-match row materialization).
  out->Reset(static_cast<int>(merge_.sources.size()));
  Row key;
  while (true) {
    const ExecStatus s = probe_->NextBatch(ctx, &probe_batch_);
    if (s != ExecStatus::kRow) return s;
    const int64_t n = probe_batch_.ActiveRows();
    for (int64_t i = 0; i < n; ++i) {
      if (ctx->CancelPending()) {
        return FlushOrStatus(out, ExecStatus::kCancelled);
      }
      ++ctx->work;
      key.clear();
      key.reserve(probe_keys_.size());
      for (int pos : probe_keys_) key.push_back(probe_batch_.At(pos, i));
      const KeyMap& map =
          partitioned_
              ? part_maps_[HashRow(key) & (kBuildPartitions - 1)]
              : map_;
      auto it = map.find(key);
      if (it == map.end()) continue;
      for (size_t bi : it->second) {
        const Row& brow = build_rows_[bi];
        for (size_t c = 0; c < merge_.sources.size(); ++c) {
          const auto& [from_left, pos] = merge_.sources[c];
          out->PutCopy(static_cast<int>(c), out->num_rows,
                       from_left ? probe_batch_.At(pos, i)
                                 : brow[static_cast<size_t>(pos)]);
        }
        ++out->num_rows;
      }
    }
    if (out->num_rows > 0) return ExecStatus::kRow;
  }
}

void HsjnOp::CloseImpl(ExecContext* ctx) {
  if (in_memory_mode_) probe_->Close(ctx);
}

bool HsjnOp::HarvestInfo(HarvestedResult* out) const {
  out->table_set = build_->table_set();
  out->complete = build_complete_;
  out->count = static_cast<int64_t>(build_rows_.size());
  out->rows = offer_build_for_reuse_ ? &build_rows_ : nullptr;
  return true;
}

// ---------------------------------------------------------------- MgjnOp

MgjnOp::MgjnOp(std::unique_ptr<Operator> left,
               std::unique_ptr<Operator> right, std::vector<int> left_keys,
               std::vector<int> right_keys, MergeSpec merge,
               TableSet table_set)
    : Operator(table_set),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      merge_(std::move(merge)) {}

int MgjnOp::CompareKeys(const Row& l, const Row& r) const {
  for (size_t k = 0; k < left_keys_.size(); ++k) {
    const int c = l[static_cast<size_t>(left_keys_[k])].Compare(
        r[static_cast<size_t>(right_keys_[k])]);
    if (c != 0) return c;
  }
  return 0;
}

ExecStatus MgjnOp::OpenImpl(ExecContext* ctx) {
  ExecStatus s = left_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  s = right_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  left_valid_ = right_valid_ = false;
  left_eof_ = right_eof_ = false;
  in_group_ = false;
  const ExecStatus sl = AdvanceLeft(ctx);
  if (IsAbortStatus(sl)) return sl;
  const ExecStatus sr = AdvanceRight(ctx);
  if (IsAbortStatus(sr)) return sr;
  return ExecStatus::kOk;
}

ExecStatus MgjnOp::AdvanceLeft(ExecContext* ctx) {
  const ExecStatus s = left_->Next(ctx, &left_row_);
  if (s == ExecStatus::kRow) {
    ++ctx->work;
    left_valid_ = true;
    return s;
  }
  left_valid_ = false;
  if (s == ExecStatus::kEof) left_eof_ = true;
  return s;
}

ExecStatus MgjnOp::AdvanceRight(ExecContext* ctx) {
  const ExecStatus s = right_->Next(ctx, &right_row_);
  if (s == ExecStatus::kRow) {
    ++ctx->work;
    right_valid_ = true;
    return s;
  }
  right_valid_ = false;
  if (s == ExecStatus::kEof) right_eof_ = true;
  return s;
}

ExecStatus MgjnOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    if (ctx->CancelPending()) return ExecStatus::kCancelled;
    if (in_group_) {
      if (group_pos_ < right_group_.size()) {
        *out = merge_.Merge(left_row_, right_group_[group_pos_]);
        ++group_pos_;
        return ExecStatus::kRow;
      }
      // Current left row finished its group; see if the next left row has
      // the same key and can reuse the buffered group.
      const ExecStatus s = AdvanceLeft(ctx);
      if (IsAbortStatus(s)) return s;
      if (left_valid_ &&
          CompareKeys(left_row_, right_group_.front()) == 0) {
        group_pos_ = 0;
        continue;
      }
      in_group_ = false;
      right_group_.clear();
    }
    if (!left_valid_ || (!right_valid_ && right_group_.empty())) {
      if (left_eof_ || (right_eof_ && right_group_.empty() && !right_valid_)) {
        return ExecStatus::kEof;
      }
      // A child returned a non-row status other than EOF earlier.
      return ExecStatus::kEof;
    }
    const int cmp = CompareKeys(left_row_, right_row_);
    if (cmp < 0) {
      const ExecStatus s = AdvanceLeft(ctx);
      if (IsAbortStatus(s)) return s;
      if (!left_valid_) {
        return ExecStatus::kEof;
      }
    } else if (cmp > 0) {
      const ExecStatus s = AdvanceRight(ctx);
      if (IsAbortStatus(s)) return s;
      if (!right_valid_) {
        return ExecStatus::kEof;
      }
    } else {
      // Buffer the full right-side key group.
      right_group_.clear();
      right_group_.push_back(right_row_);
      while (true) {
        const ExecStatus s = AdvanceRight(ctx);
        if (IsAbortStatus(s)) return s;
        if (!right_valid_) break;
        if (CompareKeys(left_row_, right_row_) != 0) break;
        right_group_.push_back(right_row_);
      }
      in_group_ = true;
      group_pos_ = 0;
    }
  }
}

void MgjnOp::CloseImpl(ExecContext* ctx) {
  left_->Close(ctx);
  right_->Close(ctx);
}

}  // namespace popdb
