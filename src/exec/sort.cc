#include "exec/sort.h"

#include <algorithm>
#include <queue>

namespace popdb {

int CompareRowsByKeys(const Row& a, const Row& b,
                      const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    int c = a[static_cast<size_t>(k.pos)].Compare(b[static_cast<size_t>(k.pos)]);
    if (k.descending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

SortOp::SortOp(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
               TableSet table_set)
    : Operator(table_set), child_(std::move(child)), keys_(std::move(keys)) {}

ExecStatus SortOp::OpenImpl(ExecContext* ctx) {
  ctx->materializers.push_back(this);
  ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  s = DrainChildRows(child_.get(), ctx, &rows_);
  if (s != ExecStatus::kEof) return s;
  child_->Close(ctx);

  auto cmp = [this](const Row& a, const Row& b) {
    return CompareRowsByKeys(a, b, keys_) < 0;
  };
  const int64_t n = static_cast<int64_t>(rows_.size());
  if (n <= ctx->mem_rows) {
    std::sort(rows_.begin(), rows_.end(), cmp);
  } else {
    // External sort: sort runs of mem_rows, then k-way merge. The merge is
    // a genuine extra pass over the data, mirroring the cost model's spill
    // cliff.
    const int64_t run = ctx->mem_rows;
    std::vector<std::pair<size_t, size_t>> runs;  // [begin, end)
    for (int64_t begin = 0; begin < n; begin += run) {
      const int64_t end = std::min(n, begin + run);
      std::sort(rows_.begin() + begin, rows_.begin() + end, cmp);
      runs.emplace_back(static_cast<size_t>(begin), static_cast<size_t>(end));
    }
    mutable_stats().spills += static_cast<int64_t>(runs.size());
    std::vector<Row> merged;
    merged.reserve(rows_.size());
    using HeapItem = std::pair<size_t, size_t>;  // (cursor, run index)
    auto heap_cmp = [this](const HeapItem& a, const HeapItem& b) {
      // std::priority_queue is a max-heap; invert for ascending order.
      return CompareRowsByKeys(rows_[a.first], rows_[b.first], keys_) > 0;
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_cmp)>
        heap(heap_cmp);
    for (size_t r = 0; r < runs.size(); ++r) {
      if (runs[r].first < runs[r].second) heap.push({runs[r].first, r});
    }
    while (!heap.empty()) {
      if (ctx->CancelPending()) return ExecStatus::kCancelled;
      auto [cursor, r] = heap.top();
      heap.pop();
      ++ctx->work;
      merged.push_back(std::move(rows_[cursor]));
      if (cursor + 1 < runs[r].second) heap.push({cursor + 1, r});
    }
    rows_ = std::move(merged);
  }
  complete_ = true;
  next_ = 0;
  return ExecStatus::kOk;
}

ExecStatus SortOp::NextImpl(ExecContext* ctx, Row* out) {
  if (ctx->CancelPending()) return ExecStatus::kCancelled;
  if (next_ < rows_.size()) {
    ++ctx->work;
    *out = rows_[next_++];
    return ExecStatus::kRow;
  }
  return ExecStatus::kEof;
}

ExecStatus SortOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (ctx->CancelPending()) return ExecStatus::kCancelled;
  const int64_t target = BatchTarget(
      ctx, rows_.empty() ? 0 : static_cast<int>(rows_.front().size()));
  out->Clear();
  while (next_ < rows_.size() && out->num_rows < target) {
    ++ctx->work;
    out->AppendRow(rows_[next_++]);
  }
  return out->num_rows > 0 ? ExecStatus::kRow : ExecStatus::kEof;
}

void SortOp::CloseImpl(ExecContext* ctx) { (void)ctx; }

bool SortOp::HarvestInfo(HarvestedResult* out) const {
  out->table_set = table_set();
  out->complete = complete_;
  out->count = materialized_count();
  out->rows = &rows_;
  out->sorted_positions.clear();
  for (const SortKey& k : keys_) {
    if (k.descending) break;  // Merge joins need ascending order.
    out->sorted_positions.push_back(k.pos);
  }
  return true;
}

TempOp::TempOp(std::unique_ptr<Operator> child, TableSet table_set)
    : Operator(table_set), child_(std::move(child)) {}

ExecStatus TempOp::OpenImpl(ExecContext* ctx) {
  ctx->materializers.push_back(this);
  ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  s = DrainChildRows(child_.get(), ctx, &rows_);
  if (s != ExecStatus::kEof) return s;
  child_->Close(ctx);
  complete_ = true;
  next_ = 0;
  return ExecStatus::kOk;
}

ExecStatus TempOp::NextImpl(ExecContext* ctx, Row* out) {
  if (ctx->CancelPending()) return ExecStatus::kCancelled;
  if (next_ < rows_.size()) {
    ++ctx->work;
    *out = rows_[next_++];
    return ExecStatus::kRow;
  }
  return ExecStatus::kEof;
}

ExecStatus TempOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (ctx->CancelPending()) return ExecStatus::kCancelled;
  const int64_t target = BatchTarget(
      ctx, rows_.empty() ? 0 : static_cast<int>(rows_.front().size()));
  out->Clear();
  while (next_ < rows_.size() && out->num_rows < target) {
    ++ctx->work;
    out->AppendRow(rows_[next_++]);
  }
  return out->num_rows > 0 ? ExecStatus::kRow : ExecStatus::kEof;
}

void TempOp::CloseImpl(ExecContext* ctx) { (void)ctx; }

bool TempOp::HarvestInfo(HarvestedResult* out) const {
  out->table_set = table_set();
  out->complete = complete_;
  out->count = materialized_count();
  out->rows = &rows_;
  return true;
}

}  // namespace popdb
