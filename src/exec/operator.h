#ifndef POPDB_EXEC_OPERATOR_H_
#define POPDB_EXEC_OPERATOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/span.h"
#include "common/value.h"
#include "exec/batch.h"
#include "exec/layout.h"

namespace popdb {

/// Result of an operator call.
enum class ExecStatus {
  kOk,          ///< Open succeeded.
  kRow,         ///< Next produced a row.
  kEof,         ///< Next reached end of stream.
  kReoptimize,  ///< A CHECK fired; unwind and re-optimize.
  kError,       ///< Internal failure; details in ExecContext::error.
  kCancelled,   ///< Cooperative cancellation (client request or deadline).
};

/// True for statuses that must unwind the whole operator tree (anything
/// other than a row or a clean end of stream).
inline bool IsAbortStatus(ExecStatus s) {
  return s == ExecStatus::kReoptimize || s == ExecStatus::kError ||
         s == ExecStatus::kCancelled;
}

/// Which kind of checkpoint fired (paper Section 3).
enum class CheckFlavor {
  kLazy,                   ///< LC: above an existing materialization point.
  kLazyEagerMat,           ///< LCEM: artificial TEMP + CHECK on NLJN outer.
  kEagerBuffered,          ///< ECB: streaming check under a buffering TEMP.
  kEagerNoCompensation,    ///< ECWC: streaming check below a materialization.
  kEagerDeferredComp,      ///< ECDC: pipelined check with anti-join comp.
  kWorkBound,              ///< Extension: execution-work budget exceeded.
};

const char* CheckFlavorName(CheckFlavor flavor);

/// Details about the checkpoint that triggered re-optimization.
struct ReoptSignal {
  bool triggered = false;
  TableSet edge_set = 0;        ///< Table set of the guarded subplan edge.
  int64_t observed_rows = 0;    ///< Rows seen when the check fired.
  bool exact = false;           ///< True if the count is the full cardinality.
  CheckFlavor flavor = CheckFlavor::kLazy;
  double check_lo = 0;
  double check_hi = 0;
};

/// Where in the plan a checkpoint sits (used to classify opportunities in
/// the Figure 14 reproduction).
enum class CheckSite {
  kMatPoint,   ///< Above a SORT/TEMP materialization.
  kHsjnBuild,  ///< On a hash-join build side.
  kNljnOuter,  ///< Guarding a nested-loop-join outer (LCEM/ECB).
  kPipeline,   ///< Mid-pipeline (ECWC/ECDC).
};

/// Record of one checkpoint evaluation during execution, captured even
/// when the check range holds. Used by the opportunity analysis (paper
/// Figure 14): `work_first` / `work_eval` are the values of
/// ExecContext::work when the checkpoint saw its first row and when it
/// made its decision, so the harness can report checkpoint positions as
/// fractions of total work.
struct CheckEvent {
  TableSet edge_set = 0;
  CheckFlavor flavor = CheckFlavor::kLazy;
  CheckSite site = CheckSite::kMatPoint;
  int64_t work_first = -1;
  int64_t work_eval = -1;
  int64_t count = 0;
  bool fired = false;
};

/// A materialized intermediate result offered for reuse after a CHECK
/// fires (paper Section 2.3). `rows` points into the producing operator and
/// is only valid until the operator tree is destroyed; the re-optimization
/// controller copies what it keeps.
struct HarvestedResult {
  TableSet table_set = 0;
  bool complete = false;  ///< True if materialization finished (exact card).
  int64_t count = 0;
  const std::vector<Row>* rows = nullptr;  ///< Null if reuse is disabled.
  /// Canonical-layout positions the rows are sorted on (empty if unsorted);
  /// lets a re-optimized merge join skip re-sorting the reused view.
  std::vector<int> sorted_positions;
};

class Operator;
class TaskRunner;

/// Shared mutable state for one plan execution.
struct ExecContext {
  /// Parameter marker bindings (by param_index).
  std::vector<Value> params;

  /// Memory budget, in rows, for hash-join builds and sorts. Exceeding it
  /// switches those operators to multi-pass (spilling) mode — the source of
  /// the cost-model cliffs that motivate validity ranges (Section 2.2).
  int64_t mem_rows = 1 << 20;

  /// Deterministic work counter: incremented once per row touched by any
  /// operator. Used as a machine-independent cost measure alongside wall
  /// time in the experiments.
  int64_t work = 0;

  /// Set when a CHECK fires.
  ReoptSignal reopt;

  /// Operators that materialize results register here during Open so the
  /// re-optimization controller can harvest intermediate results and
  /// actual cardinalities.
  std::vector<Operator*> materializers;

  /// Rows already returned to the application, recorded by RidTrackOp when
  /// eager checking with deferred compensation is active.
  std::vector<Row> returned_rows;

  /// Checkpoint evaluations observed during this execution (Figure 14).
  std::vector<CheckEvent> check_events;

  std::string error;

  /// Cooperative cancellation token, polled by operators in their row loops
  /// (scans, NLJN inner loops, spill passes). Not owned; may be null.
  CancelToken* cancel = nullptr;

  /// Intra-query parallelism: morsel tasks fan out through this runner
  /// (exec/parallel.h). Not owned; null = serial execution. `dop` bounds
  /// the workers one parallel fragment may occupy, including the query's
  /// own thread. Exchange operators give their tasks private contexts —
  /// only `cancel` (thread safe) is shared — and fold the task totals back
  /// in at join, so everything else in this struct stays single-threaded.
  TaskRunner* tasks = nullptr;
  int dop = 1;

  /// Morsel accounting, aggregated when a fragment's task group joins.
  int64_t morsels_dispatched = 0;
  int64_t parallel_work = 0;  ///< Work units spent inside morsel tasks.

  /// Vectorized execution: target rows per RowBatch exchanged between
  /// operators. <= 1 selects the row-at-a-time engine; operators driven
  /// through Next() always run row-at-a-time regardless of this value, so
  /// a consumer that needs row-granular semantics (streaming CHECKs, work
  /// bounds) simply pulls rows and its whole subtree follows.
  int64_t batch_rows = 1;

  /// Strided poll: checks the token every kCancelPollStride calls so the
  /// per-row cost is a decrement on the fast path. Returns true once the
  /// token tripped (explicit cancel or deadline); the polling operator then
  /// unwinds with ExecStatus::kCancelled.
  bool CancelPending() {
    if (cancel == nullptr) return false;
    if (--cancel_poll_countdown_ > 0) return false;
    cancel_poll_countdown_ = kCancelPollStride;
    return cancel->Expired();
  }

 private:
  static constexpr int kCancelPollStride = 256;
  int cancel_poll_countdown_ = 1;
};

/// Per-operator execution counters and (sampled) wall-clock timings, read
/// by EXPLAIN ANALYZE after execution. Timing in the Next hot loop uses
/// strided clock reads — one measured call out of kTimingStride, scaled —
/// so instrumentation is compiled-in but cheap.
struct OperatorStats {
  int64_t next_calls = 0;  ///< Total Next/NextBatch invocations (incl. EOF).
  int64_t batches = 0;     ///< NextBatch invocations (vectorized pulls).
  int64_t open_ns = 0;     ///< Wall time inside Open (subtree included).
  int64_t next_ns = 0;     ///< Estimated total wall time inside Next.
  int64_t close_ns = 0;    ///< Wall time inside Close.
  int64_t loops = 0;       ///< NLJN: outer rows probed against the inner.
  int64_t partitions = 0;  ///< HSJN: leaf partitions joined after spilling.
  int64_t spills = 0;      ///< Extra passes: sort run merges, hash repartitions.

  double open_ms() const { return static_cast<double>(open_ns) / 1e6; }
  double next_ms() const { return static_cast<double>(next_ns) / 1e6; }
  double close_ms() const { return static_cast<double>(close_ns) / 1e6; }
};

/// Base class for Volcano-style iterators (open/next/close; Figure 10 of
/// the paper uses the same model). Single-threaded; an operator tree is
/// driven by repeatedly calling Next on the root.
///
/// The public Open/Next/Close entry points are non-virtual wrappers that
/// maintain OperatorStats (row counts, strided wall-clock timings), emit
/// one tracer span per operator lifetime, and centralize the row/EOF
/// accounting; subclasses implement OpenImpl/NextImpl/CloseImpl.
///
/// Every operator counts the rows it produces (`rows_produced`) and whether
/// it ran to completion (`eof_seen`); the POP controller turns these into
/// cardinality feedback: exact cardinalities for completed edges, lower
/// bounds for partially executed ones.
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Prepares the operator (and its subtree). May return kReoptimize when a
  /// checkpoint fires during eager materialization.
  ExecStatus Open(ExecContext* ctx) {
    const int64_t t0 = ClockNs();
    if (SpanTracer::Global().enabled()) span_start_us_ = SpanTracer::Global().NowUs();
    const ExecStatus s = OpenImpl(ctx);
    stats_.open_ns += ClockNs() - t0;
    return s;
  }

  /// Produces the next row into `*out`. Returns kRow, kEof, kReoptimize,
  /// kCancelled or kError. After kEof the call must not be repeated.
  ExecStatus Next(ExecContext* ctx, Row* out) {
    // Strided clock reads: every kTimingStride-th call is measured and
    // scaled up, so the common case pays one increment and one mask.
    if ((++stats_.next_calls & (kTimingStride - 1)) != 0) {
      const ExecStatus s = NextImpl(ctx, out);
      if (s == ExecStatus::kRow) {
        ++rows_produced_;
      } else if (s == ExecStatus::kEof) {
        eof_seen_ = true;
      }
      return s;
    }
    const int64_t t0 = ClockNs();
    const ExecStatus s = NextImpl(ctx, out);
    stats_.next_ns += (ClockNs() - t0) * kTimingStride;
    if (s == ExecStatus::kRow) {
      ++rows_produced_;
    } else if (s == ExecStatus::kEof) {
      eof_seen_ = true;
    }
    return s;
  }

  /// Produces the next batch of rows into `*out`. Returns kRow with at
  /// least one active row, or a terminal status with an untouched batch.
  /// Statuses raised mid-assembly after a non-empty prefix are delivered on
  /// the following call, so rows that the row engine would have streamed
  /// before an abort are never lost. After kEof the call must not be
  /// repeated. Mixing Next and NextBatch on one operator is not supported;
  /// a consumer picks one granularity for the operator's lifetime.
  ExecStatus NextBatch(ExecContext* ctx, RowBatch* out) {
    ++stats_.next_calls;
    ++stats_.batches;
    if (pending_batch_status_ != ExecStatus::kOk) {
      const ExecStatus s = pending_batch_status_;
      pending_batch_status_ = ExecStatus::kOk;
      if (s == ExecStatus::kEof) eof_seen_ = true;
      return s;
    }
    out->reserve_hint = BatchTarget(ctx);
    const int64_t t0 = ClockNs();
    const ExecStatus s = NextBatchImpl(ctx, out);
    stats_.next_ns += ClockNs() - t0;
    if (s == ExecStatus::kRow) {
      rows_produced_ += out->ActiveRows();
    } else if (s == ExecStatus::kEof) {
      eof_seen_ = true;
    }
    return s;
  }

  /// Reverses producer-side accounting for `unconsumed` rows of the last
  /// batch when a batch-boundary CHECK truncates it mid-batch. Enforced
  /// CHECKs clamp their child's batch target so the aborting row is always
  /// the last one pulled; this hook is the defensive backstop for a child
  /// that over-produces past its target, where dropping the produced-row
  /// count keeps harvested feedback identical to the row engine's (the
  /// violating row itself stays consumed).
  virtual void ReconcileAbort(int64_t unconsumed) {
    rows_produced_ -= unconsumed;
  }

  /// Releases resources. Must be safe to call after any status.
  void Close(ExecContext* ctx) {
    const int64_t t0 = ClockNs();
    CloseImpl(ctx);
    stats_.close_ns += ClockNs() - t0;
    SpanTracer& tracer = SpanTracer::Global();
    if (span_start_us_ >= 0 && !span_emitted_ && tracer.enabled()) {
      span_emitted_ = true;
      tracer.RecordSpan(name(), "exec", span_start_us_,
                        tracer.NowUs() - span_start_us_, "rows",
                        rows_produced_);
    }
  }

  /// Table set this operator produces rows for (0 for post-join operators
  /// such as aggregation whose output is no longer a canonical table-set
  /// row).
  TableSet table_set() const { return table_set_; }

  int64_t rows_produced() const { return rows_produced_; }
  bool eof_seen() const { return eof_seen_; }
  const OperatorStats& stats() const { return stats_; }

  /// Child operators in plan order (empty for leaves). Used by EXPLAIN
  /// ANALYZE to walk the executed tree; the iterator interface itself never
  /// needs it.
  virtual std::vector<const Operator*> children() const { return {}; }

  /// If this operator holds a completed or in-progress materialization,
  /// fills `*out` and returns true (see HarvestedResult).
  virtual bool HarvestInfo(HarvestedResult* out) const {
    (void)out;
    return false;
  }

  /// Operator name for plan/debug printing.
  virtual const char* name() const = 0;

  /// Optimizer annotations attached by the ExecutorBuilder so EXPLAIN
  /// ANALYZE can report estimated vs. actual rows per executed operator.
  void AnnotateEstimates(double est_rows, double est_cost,
                         std::string detail) {
    est_rows_ = est_rows;
    est_cost_ = est_cost;
    detail_ = std::move(detail);
    annotated_ = true;
  }
  bool annotated() const { return annotated_; }
  double est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }
  const std::string& detail() const { return detail_; }

 protected:
  explicit Operator(TableSet table_set) : table_set_(table_set) {}

  virtual ExecStatus OpenImpl(ExecContext* ctx) = 0;
  virtual ExecStatus NextImpl(ExecContext* ctx, Row* out) = 0;
  virtual void CloseImpl(ExecContext* ctx) = 0;

  /// Batch production. The default assembles a batch by driving this
  /// operator's own NextImpl row-at-a-time (children are pulled through
  /// row-mode Next), which preserves row-engine semantics bit-exactly for
  /// operators without a native vectorized path. Subclasses with a native
  /// path override this.
  virtual ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out);

  /// Stashes `s` for delivery on the next NextBatch call and returns kRow
  /// if `out` carries a non-empty prefix; returns `s` directly otherwise.
  /// Native NextBatchImpl overrides use this to flush rows produced before
  /// a mid-batch terminal status.
  ExecStatus FlushOrStatus(RowBatch* out, ExecStatus s) {
    if (out->ActiveRows() == 0) return s;
    pending_batch_status_ = s;
    return ExecStatus::kRow;
  }

  /// Target active rows per produced batch.
  static int64_t BatchTarget(const ExecContext* ctx) {
    return ctx->batch_rows > 1 ? ctx->batch_rows : 1;
  }

  /// Width-aware target: scales the context target down so one batch's
  /// payload (`width` columns of Value) stays within a fixed byte budget.
  /// Wide batches otherwise outgrow the cache between fill and
  /// consumption and the gather/scatter loops of vectorized operators go
  /// memory-bound; narrow batches keep the full row target. Never exceeds
  /// the context target, so CHECK batch-target clamping stays exact.
  static int64_t BatchTarget(const ExecContext* ctx, int width) {
    return CapBatchRowsForWidth(BatchTarget(ctx), width);
  }

  /// Mutable counters for subclass-specific detail (loops/partitions/
  /// spills).
  OperatorStats& mutable_stats() { return stats_; }

  /// For exchange-style operators whose rows are consumed inside worker
  /// tasks (hash-agg pre-aggregation) instead of being pulled through
  /// Next: folds the externally consumed count into rows_produced so
  /// feedback harvesting sees the true fragment cardinality.
  void CreditExternalRows(int64_t n) { rows_produced_ += n; }

  static int64_t ClockNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  static constexpr int64_t kTimingStride = 32;  // Must be a power of two.

  TableSet table_set_;
  int64_t rows_produced_ = 0;
  bool eof_seen_ = false;
  OperatorStats stats_;
  double est_rows_ = -1.0;
  double est_cost_ = -1.0;
  std::string detail_;
  bool annotated_ = false;
  int64_t span_start_us_ = -1;
  bool span_emitted_ = false;
  ExecStatus pending_batch_status_ = ExecStatus::kOk;
};

/// Runs `root` to completion, appending produced rows to `*out_rows`.
/// Returns the final status (kEof on success, kReoptimize if a checkpoint
/// fired, kError on failure). Opens and closes the tree.
ExecStatus RunToCompletion(Operator* root, ExecContext* ctx,
                           std::vector<Row>* out_rows);

/// Runs `root` to completion pulling batches, appending produced batches to
/// `*out_batches` (moved, so the per-operator column buffers are recycled).
/// Opens and closes the tree. Used by parallel fragment workers.
ExecStatus RunToCompletionBatches(Operator* root, ExecContext* ctx,
                                  std::vector<RowBatch>* out_batches);

/// Drains an already-open `child` to EOF into `*rows`, charging one work
/// unit per row — the materialization drain shared by SORT/TEMP and the
/// hash-join build and spill-probe sides. Pulls batches when the context is
/// vectorized, rows otherwise; either way the materialized rows, their
/// order, and the work charged are identical. Returns kEof on completion or
/// the child's abort status (rows drained before the abort are kept, as in
/// row-at-a-time execution).
ExecStatus DrainChildRows(Operator* child, ExecContext* ctx,
                          std::vector<Row>* rows);

/// Collects all operators of a tree in pre-order (for counter harvesting).
/// Not part of Operator to keep the iterator interface minimal; the plan
/// builder records the operator list instead.

}  // namespace popdb

#endif  // POPDB_EXEC_OPERATOR_H_
