#include "exec/operator.h"

namespace popdb {

const char* CheckFlavorName(CheckFlavor flavor) {
  switch (flavor) {
    case CheckFlavor::kLazy:
      return "LC";
    case CheckFlavor::kLazyEagerMat:
      return "LCEM";
    case CheckFlavor::kEagerBuffered:
      return "ECB";
    case CheckFlavor::kEagerNoCompensation:
      return "ECWC";
    case CheckFlavor::kEagerDeferredComp:
      return "ECDC";
    case CheckFlavor::kWorkBound:
      return "WORKBOUND";
  }
  return "?";
}

ExecStatus Operator::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  // Row-assembly fallback: the operator (and, through its row-mode Next
  // pulls, its whole subtree) runs with row-engine semantics; this only
  // packages the produced rows. A terminal status hit after a non-empty
  // prefix is flushed via FlushOrStatus so the prefix reaches the consumer
  // exactly as the row engine would have streamed it.
  int64_t target = BatchTarget(ctx);
  out->Clear();
  Row row;
  while (out->ActiveRows() < target) {
    const ExecStatus s = NextImpl(ctx, &row);
    if (s != ExecStatus::kRow) return FlushOrStatus(out, s);
    out->AppendRowMove(std::move(row));
    row.clear();
    // The first row reveals the output width; tighten the target to the
    // width-aware cap (never above the original, so clamps stay exact).
    if (out->num_rows == 1) {
      const int64_t capped = BatchTarget(ctx, out->width());
      if (capped < target) target = capped;
    }
  }
  return ExecStatus::kRow;
}

ExecStatus RunToCompletion(Operator* root, ExecContext* ctx,
                           std::vector<Row>* out_rows) {
  ExecStatus status = root->Open(ctx);
  if (status == ExecStatus::kOk) {
    if (ctx->batch_rows > 1) {
      RowBatch batch;
      while (true) {
        status = root->NextBatch(ctx, &batch);
        if (status != ExecStatus::kRow) break;
        batch.MoveRowsInto(out_rows);
      }
    } else {
      Row row;
      while (true) {
        status = root->Next(ctx, &row);
        if (status != ExecStatus::kRow) break;
        out_rows->push_back(row);
      }
    }
  }
  root->Close(ctx);
  return status;
}

ExecStatus DrainChildRows(Operator* child, ExecContext* ctx,
                          std::vector<Row>* rows) {
  ExecStatus s;
  if (ctx->batch_rows > 1) {
    RowBatch batch;
    while (true) {
      s = child->NextBatch(ctx, &batch);
      if (s != ExecStatus::kRow) return s;
      ctx->work += batch.ActiveRows();
      batch.MoveRowsInto(rows);
    }
  } else {
    Row row;
    while (true) {
      s = child->Next(ctx, &row);
      if (s != ExecStatus::kRow) return s;
      ++ctx->work;
      rows->push_back(std::move(row));
    }
  }
}

ExecStatus RunToCompletionBatches(Operator* root, ExecContext* ctx,
                                  std::vector<RowBatch>* out_batches) {
  ExecStatus status = root->Open(ctx);
  if (status == ExecStatus::kOk) {
    while (true) {
      RowBatch batch;
      status = root->NextBatch(ctx, &batch);
      if (status != ExecStatus::kRow) break;
      out_batches->push_back(std::move(batch));
    }
  }
  root->Close(ctx);
  return status;
}

}  // namespace popdb
