#include "exec/operator.h"

namespace popdb {

const char* CheckFlavorName(CheckFlavor flavor) {
  switch (flavor) {
    case CheckFlavor::kLazy:
      return "LC";
    case CheckFlavor::kLazyEagerMat:
      return "LCEM";
    case CheckFlavor::kEagerBuffered:
      return "ECB";
    case CheckFlavor::kEagerNoCompensation:
      return "ECWC";
    case CheckFlavor::kEagerDeferredComp:
      return "ECDC";
    case CheckFlavor::kWorkBound:
      return "WORKBOUND";
  }
  return "?";
}

ExecStatus RunToCompletion(Operator* root, ExecContext* ctx,
                           std::vector<Row>* out_rows) {
  ExecStatus status = root->Open(ctx);
  if (status == ExecStatus::kOk) {
    Row row;
    while (true) {
      status = root->Next(ctx, &row);
      if (status != ExecStatus::kRow) break;
      out_rows->push_back(row);
    }
  }
  root->Close(ctx);
  return status;
}

}  // namespace popdb
