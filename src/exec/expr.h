#ifndef POPDB_EXEC_EXPR_H_
#define POPDB_EXEC_EXPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace popdb {

/// Reference to a column of a query table: `table_id` is the table's
/// position-independent id inside one QuerySpec, `column` is the column
/// index within that table's schema.
struct ColRef {
  int table_id = -1;
  int column = -1;

  bool operator==(const ColRef& o) const {
    return table_id == o.table_id && column == o.column;
  }
};

/// Comparison kinds supported by local predicates.
enum class PredKind {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,   // operand <= col <= operand2
  kIn,        // col IN in_list
  kLike,      // string LIKE pattern (operand is the pattern)
};

const char* PredKindName(PredKind kind);

/// A single-table restriction predicate as seen by the optimizer. Parameter
/// markers (`is_param`) hide the literal from the optimizer: estimation
/// falls back to a default selectivity while execution binds the actual
/// value from the query's parameter list — this is the paper's mechanism
/// for injecting cardinality estimation errors (Section 5.1).
struct Predicate {
  int pred_id = -1;  ///< Unique within one QuerySpec.
  ColRef col;
  PredKind kind = PredKind::kEq;
  Value operand;
  Value operand2;              ///< Upper bound for kBetween.
  std::vector<Value> in_list;  ///< For kIn.
  bool is_param = false;       ///< Parameter marker: estimator can't see it.
  int param_index = -1;        ///< Index into QuerySpec parameter bindings.

  std::string ToString() const;
};

/// Equality join predicate between two query tables.
struct JoinPredicate {
  ColRef left;
  ColRef right;

  std::string ToString() const;
};

/// A predicate with its column resolved to a position inside the executor's
/// row layout and with any parameter marker already bound to its literal.
/// This is what operators actually evaluate.
struct ResolvedPredicate {
  int pos = -1;
  PredKind kind = PredKind::kEq;
  Value operand;
  Value operand2;
  std::vector<Value> in_list;
};

/// Evaluates `pred` against `row`. NULL column values never satisfy a
/// predicate (SQL three-valued logic collapsed to false).
bool EvalPredicate(const ResolvedPredicate& pred, const Row& row);

/// Evaluates `pred` against a single already-extracted column value (the
/// shared kernel of the row and column paths).
bool EvalPredicateValue(const ResolvedPredicate& pred, const Value& v);

/// Batch-at-a-time predicate evaluation: narrows the selection vector
/// `*sel` (raw row indices into `col`, `pred.pos` already applied by the
/// caller choosing the column) to the rows satisfying `pred`, preserving
/// order. Applying predicates column-by-column over a conjunction yields
/// exactly the rows per-row short-circuit evaluation keeps.
void EvalPredicateColumn(const ResolvedPredicate& pred,
                         const std::vector<Value>& col,
                         std::vector<int32_t>* sel);

/// Resolves `pred`: substitutes the bound parameter (if any) from `params`
/// and stores `pos` as the evaluation position.
ResolvedPredicate ResolvePredicate(const Predicate& pred, int pos,
                                   const std::vector<Value>& params);

}  // namespace popdb

#endif  // POPDB_EXEC_EXPR_H_
