#ifndef POPDB_EXEC_SCAN_H_
#define POPDB_EXEC_SCAN_H_

#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "storage/table.h"

namespace popdb {

/// Sequential scan over a base table, applying resolved local predicates.
/// Output layout is the table's own columns (canonical for a singleton
/// table set).
class TableScanOp : public Operator {
 public:
  TableScanOp(const Table* table, int table_id,
              std::vector<ResolvedPredicate> preds)
      : Operator(TableBit(table_id)), table_(table), preds_(std::move(preds)) {}

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "TBSCAN"; }

 private:
  const Table* table_;
  std::vector<ResolvedPredicate> preds_;
  int64_t next_rid_ = 0;
};

/// Scan over an in-memory row vector (a temporary materialized view created
/// by a previous execution step). The rows already carry the canonical
/// layout for `table_set`.
class MatViewScanOp : public Operator {
 public:
  MatViewScanOp(const std::vector<Row>* rows, TableSet table_set)
      : Operator(table_set), rows_(rows) {}

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "MVSCAN"; }

 private:
  const std::vector<Row>* rows_;
  size_t next_ = 0;
};

}  // namespace popdb

#endif  // POPDB_EXEC_SCAN_H_
