#ifndef POPDB_EXEC_SCAN_H_
#define POPDB_EXEC_SCAN_H_

#include <utility>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "storage/table.h"

namespace popdb {

/// Sequential scan over a base table, applying resolved local predicates.
/// Output layout is the table's own columns (canonical for a singleton
/// table set). An optional rid range [begin_rid, end_rid) restricts the
/// scan to one morsel of the table (exec/parallel.h); end_rid < 0 means
/// "through the last row".
///
/// The scan reads a pinned TableSnapshot, so concurrent writes are
/// invisible: rows tombstoned in the snapshot are skipped, rows appended
/// after the pin don't exist in it. The builder passes the query's shared
/// snapshot (one pin per table per query, consistent across re-opt
/// attempts); the Table* convenience ctor pins its own.
class TableScanOp : public Operator {
 public:
  TableScanOp(TableSnapshot snapshot, int table_id,
              std::vector<ResolvedPredicate> preds, int64_t begin_rid = 0,
              int64_t end_rid = -1)
      : Operator(TableBit(table_id)),
        snapshot_(std::move(snapshot)),
        preds_(std::move(preds)),
        begin_rid_(begin_rid),
        end_rid_(end_rid) {}

  TableScanOp(const Table* table, int table_id,
              std::vector<ResolvedPredicate> preds, int64_t begin_rid = 0,
              int64_t end_rid = -1)
      : TableScanOp(table->Snapshot(), table_id, std::move(preds), begin_rid,
                    end_rid) {}

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "TBSCAN"; }

 private:
  TableSnapshot snapshot_;
  std::vector<ResolvedPredicate> preds_;
  int64_t begin_rid_ = 0;
  int64_t end_rid_ = -1;   ///< Exclusive; negative = snapshot size.
  int64_t next_rid_ = 0;
  int64_t stop_rid_ = 0;   ///< Resolved end bound (set at Open).
};

/// Scan over an in-memory row vector (a temporary materialized view created
/// by a previous execution step). The rows already carry the canonical
/// layout for `table_set`.
class MatViewScanOp : public Operator {
 public:
  MatViewScanOp(const std::vector<Row>* rows, TableSet table_set)
      : Operator(table_set), rows_(rows) {}

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "MVSCAN"; }

 private:
  const std::vector<Row>* rows_;
  size_t next_ = 0;
};

}  // namespace popdb

#endif  // POPDB_EXEC_SCAN_H_
