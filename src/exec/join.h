#ifndef POPDB_EXEC_JOIN_H_
#define POPDB_EXEC_JOIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "storage/index.h"
#include "storage/table.h"

namespace popdb {

/// Check condition evaluated against a materialized cardinality (used for
/// the optional lazy check on a hash-join build, and by the CHECK
/// operators in check.h).
struct CheckSpec {
  bool enabled = false;
  double lo = 0.0;
  double hi = 0.0;
  CheckFlavor flavor = CheckFlavor::kLazy;
  TableSet edge_set = 0;
  /// Record a CheckEvent but never trigger re-optimization (used by the
  /// opportunity-analysis experiments, Figure 14).
  bool observe_only = false;
};

/// Describes how a nested-loop join accesses its inner table. The inner of
/// an NLJN is always a base-table (or materialized-view) access path, as
/// produced by the Selinger-style enumerator; when `index` is set, the
/// first join condition is seeded by an index probe.
struct InnerAccess {
  const Table* table = nullptr;
  /// Pinned version of `table` to read. When left invalid, NljnOp pins the
  /// table's current version at Open (convenience for direct operator
  /// tests); the builder passes the query's shared snapshot.
  TableSnapshot snapshot;
  /// For a matview inner, rows come from here instead of `table`.
  const std::vector<Row>* mv_rows = nullptr;
  int table_id = -1;
  std::vector<ResolvedPredicate> local_preds;  ///< Positions in inner row.

  struct JoinCond {
    int outer_pos = -1;  ///< Position in the outer child's output row.
    int inner_pos = -1;  ///< Column position in the inner row.
  };
  std::vector<JoinCond> join_conds;

  /// Seeds candidates for join_conds[0] if non-null. Because live indexes
  /// are maintained as superset postings under writes (storage/index.h),
  /// candidates are re-checked against the pinned snapshot: bounds,
  /// liveness and *all* join conditions.
  const HashIndex* index = nullptr;
};

/// (Index) nested-loop join: for each outer row, finds matching inner rows
/// either through a hash-index probe or by scanning the inner table.
/// This operator pipelines: it never materializes its outer, which is why
/// the paper guards NLJN outers with LCEM/ECB checkpoints.
class NljnOp : public Operator {
 public:
  NljnOp(std::unique_ptr<Operator> outer, InnerAccess inner, MergeSpec merge,
         TableSet table_set);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "NLJN"; }
  std::vector<const Operator*> children() const override {
    return {outer_.get()};
  }

 private:
  /// Fetches candidate inner row ids for the current outer row.
  /// `index_key` is the outer join-key value for an index probe (null when
  /// the inner side is a full scan).
  void StartProbe(ExecContext* ctx, const Value* index_key);
  const Row& InnerRow(int64_t rid) const;
  int64_t NumInnerRows() const;
  /// True when `rid` exists and is live in the pinned inner snapshot
  /// (matview rows are always visible).
  bool InnerRowVisible(int64_t rid) const;

  std::unique_ptr<Operator> outer_;
  InnerAccess inner_;
  MergeSpec merge_;

  Row outer_row_;
  bool outer_valid_ = false;
  // Probe state: either an index candidate list (copied out of the index
  // under its shared lock, so concurrent index maintenance can't invalidate
  // it mid-iteration) or a full-scan cursor.
  std::vector<int64_t> index_candidates_;
  size_t candidate_pos_ = 0;
  int64_t scan_rid_ = 0;
  // Vectorized path: the held outer batch and the index of the active row
  // currently being probed (advanced once its candidates are exhausted).
  // Probe state above resumes across output batches, so an outer row with
  // more matches than one batch holds continues where it stopped.
  RowBatch outer_batch_;
  bool outer_batch_valid_ = false;
  int64_t outer_idx_ = 0;
};

/// Hash join. Child 0 is the probe (outer) side, child 1 the build (inner)
/// side. The build side is fully materialized at Open; if it exceeds the
/// memory budget the operator recursively partitions both sides with a
/// fixed fan-out (extra passes over the data — the cost cliffs of
/// Section 2.2). An optional CheckSpec implements a lazy checkpoint on the
/// build cardinality.
class HsjnOp : public Operator {
 public:
  static constexpr int kFanOut = 16;
  /// Parallel in-memory build (exec/parallel.h): hash partitions of the
  /// shared table (power of two, addressed by key-hash mask) and the
  /// minimum build size worth the task-group handshake. Builds below the
  /// threshold — or any execution without a task runner — use the serial
  /// single-map path, bit-identically.
  static constexpr int kBuildPartitions = 32;
  static constexpr int64_t kMinParallelBuildRows = 1024;

  HsjnOp(std::unique_ptr<Operator> probe, std::unique_ptr<Operator> build,
         std::vector<int> probe_keys, std::vector<int> build_keys,
         MergeSpec merge, TableSet table_set, CheckSpec build_check,
         bool offer_build_for_reuse);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  bool HarvestInfo(HarvestedResult* out) const override;
  const char* name() const override { return "HSJN"; }
  std::vector<const Operator*> children() const override {
    return {probe_.get(), build_.get()};
  }

 private:
  using KeyMap = std::unordered_map<Row, std::vector<size_t>, RowHash>;

  Row BuildKey(const Row& row) const;
  Row ProbeKey(const Row& row) const;
  /// Recursively partitions build/probe rows until each build partition
  /// fits in memory, charging one work unit per row per level.
  ExecStatus Join(ExecContext* ctx, std::vector<Row>* build,
                  std::vector<Row>* probe, int depth);
  /// Two-phase parallel hash build over the materialized build side:
  /// per-task contiguous slices fill per-task per-partition insert
  /// buffers, then partitions are claimed dynamically and each partition
  /// map is filled walking the buffers in worker order — ascending
  /// build-row index — so per-key match lists keep the exact serial
  /// insertion order and probe output is bit-identical.
  void ParallelBuild(ExecContext* ctx);

  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;
  std::vector<int> probe_keys_;
  std::vector<int> build_keys_;
  MergeSpec merge_;
  CheckSpec build_check_;
  bool offer_build_for_reuse_;

  std::vector<Row> build_rows_;  ///< Kept alive for harvesting.
  bool build_complete_ = false;
  std::vector<Row> output_;  ///< Joined rows (computed in Open).
  size_t next_out_ = 0;
  bool in_memory_mode_ = false;
  // Streaming (in-memory) mode state. `partitioned_` selects between the
  // serial single map and the parallel-built per-partition maps.
  KeyMap map_;
  std::vector<KeyMap> part_maps_;
  bool partitioned_ = false;
  Row probe_row_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  RowBatch probe_batch_;  ///< Vectorized probe scratch.
};

/// Merge join over two inputs sorted on the join keys (the optimizer
/// inserts SortOp children). Buffers each right-side key group to emit the
/// cross product with equal left rows.
class MgjnOp : public Operator {
 public:
  MgjnOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
         std::vector<int> left_keys, std::vector<int> right_keys,
         MergeSpec merge, TableSet table_set);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "MGJN"; }
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  int CompareKeys(const Row& l, const Row& r) const;
  ExecStatus AdvanceLeft(ExecContext* ctx);
  ExecStatus AdvanceRight(ExecContext* ctx);

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  MergeSpec merge_;

  Row left_row_, right_row_;
  bool left_valid_ = false, right_valid_ = false;
  bool left_eof_ = false, right_eof_ = false;
  std::vector<Row> right_group_;  ///< Current right key group.
  size_t group_pos_ = 0;
  bool in_group_ = false;
};

}  // namespace popdb

#endif  // POPDB_EXEC_JOIN_H_
