#include "exec/check.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace popdb {

CheckOp::CheckOp(std::unique_ptr<Operator> child, CheckSpec spec)
    : Operator(child->table_set()), child_(std::move(child)), spec_(spec) {}

ExecStatus CheckOp::OpenImpl(ExecContext* ctx) {
  count_ = 0;
  work_first_ = -1;
  event_recorded_ = false;
  if (spec_.enabled) {
    TRACE_INSTANT_ARG("checkpoint_armed", "exec", "edge_set",
                      spec_.edge_set);
  }
  return child_->Open(ctx);
}

void CheckOp::RecordEvent(ExecContext* ctx, bool fired) {
  if (event_recorded_) return;
  event_recorded_ = true;
  CheckEvent ev;
  ev.edge_set = spec_.edge_set;
  ev.flavor = spec_.flavor;
  ev.site = spec_.flavor == CheckFlavor::kEagerBuffered
                ? CheckSite::kNljnOuter
                : CheckSite::kPipeline;
  ev.work_first = work_first_;
  ev.work_eval = ctx->work;
  ev.count = count_;
  ev.fired = fired;
  ctx->check_events.push_back(ev);
  TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                    "exec", "count", ev.count);
}

ExecStatus CheckOp::Fire(ExecContext* ctx, bool exact) {
  RecordEvent(ctx, /*fired=*/true);
  if (spec_.observe_only) {
    // Observation mode: note the violation but keep executing.
    return ExecStatus::kRow;
  }
  ctx->reopt.triggered = true;
  ctx->reopt.edge_set = spec_.edge_set;
  ctx->reopt.observed_rows = count_;
  ctx->reopt.exact = exact;
  ctx->reopt.flavor = spec_.flavor;
  ctx->reopt.check_lo = spec_.lo;
  ctx->reopt.check_hi = spec_.hi;
  return ExecStatus::kReoptimize;
}

ExecStatus CheckOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    if (count_ == 0) work_first_ = ctx->work;
    ++count_;
    if (spec_.enabled && static_cast<double>(count_) > spec_.hi) {
      // The observed count is a lower bound on the true cardinality: the
      // stream was cut short (Section 3.4, eager checks).
      const ExecStatus fired = Fire(ctx, /*exact=*/false);
      if (fired == ExecStatus::kReoptimize) return fired;
    }
    return ExecStatus::kRow;
  }
  if (s == ExecStatus::kEof) {
    if (spec_.enabled && static_cast<double>(count_) < spec_.lo) {
      const ExecStatus fired = Fire(ctx, /*exact=*/true);
      if (fired == ExecStatus::kReoptimize) return fired;
    } else if (spec_.enabled) {
      RecordEvent(ctx, /*fired=*/false);
    }
  }
  return s;
}

ExecStatus CheckOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  // For an enforced upper bound, clamp the child's batch target to the
  // rows remaining before the violation threshold (count > hi first holds
  // at floor(hi) + 1): the child can never produce past the row the row
  // engine would have aborted on, so a violation always lands on the
  // final row of the pulled batch, no consumed-but-unemitted rows exist,
  // and the vectorized path is exact above any child — streaming joins
  // included. Observation mode and pure lower bounds never truncate, so
  // they pass full batches through unclamped.
  const bool enforced_hi =
      spec_.enabled && !spec_.observe_only &&
      spec_.hi != std::numeric_limits<double>::infinity();
  const int64_t full_target = ctx->batch_rows;
  if (enforced_hi) {
    const double remaining =
        std::floor(spec_.hi) + 1.0 - static_cast<double>(count_);
    if (remaining < static_cast<double>(full_target)) {
      ctx->batch_rows =
          remaining > 1.0 ? static_cast<int64_t>(remaining) : 1;
    }
  }
  const ExecStatus s = child_->NextBatch(ctx, out);
  ctx->batch_rows = full_target;
  if (s == ExecStatus::kRow) {
    const int64_t n = out->ActiveRows();
    if (count_ == 0 && n > 0) work_first_ = ctx->work;
    const int64_t before = count_;
    if (spec_.enabled && static_cast<double>(before + n) > spec_.hi) {
      // The row engine fires on the first row that pushes the count past
      // hi, having emitted only the rows before it: keep that prefix and
      // report the count through the violating row. With the clamp above
      // an enforced violation is always the batch's final row (keep ==
      // n - 1); the reconcile call is defensive for children that
      // over-produce past their target.
      int64_t keep = static_cast<int64_t>(std::floor(spec_.hi)) - before;
      if (keep < 0) keep = 0;
      if (keep > n - 1) keep = n - 1;
      count_ = before + keep + 1;
      const ExecStatus fired = Fire(ctx, /*exact=*/false);
      if (fired == ExecStatus::kReoptimize) {
        if (n - keep - 1 > 0) child_->ReconcileAbort(n - keep - 1);
        out->TruncateActive(keep);
        return FlushOrStatus(out, ExecStatus::kReoptimize);
      }
      // Observation mode: the event is recorded; the full batch streams on.
    }
    count_ = before + n;
    return ExecStatus::kRow;
  }
  if (s == ExecStatus::kEof) {
    if (spec_.enabled && static_cast<double>(count_) < spec_.lo) {
      const ExecStatus fired = Fire(ctx, /*exact=*/true);
      if (fired == ExecStatus::kReoptimize) return fired;
    } else if (spec_.enabled) {
      RecordEvent(ctx, /*fired=*/false);
    }
  }
  return s;
}

BufCheckOp::BufCheckOp(std::unique_ptr<Operator> child, CheckSpec spec)
    : Operator(child->table_set()), child_(std::move(child)), spec_(spec) {}

void BufCheckOp::RecordEvent(ExecContext* ctx, bool fired) {
  if (event_recorded_) return;
  event_recorded_ = true;
  CheckEvent ev;
  ev.edge_set = spec_.edge_set;
  ev.flavor = spec_.flavor;
  ev.site = CheckSite::kNljnOuter;
  ev.work_first = work_first_;
  ev.work_eval = ctx->work;
  ev.count = count_;
  ev.fired = fired;
  ctx->check_events.push_back(ev);
  TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                    "exec", "count", ev.count);
}

ExecStatus BufCheckOp::Fire(ExecContext* ctx, bool exact) {
  RecordEvent(ctx, /*fired=*/true);
  if (spec_.observe_only) {
    decided_ = true;  // Keep streaming in observation mode.
    return ExecStatus::kOk;
  }
  ctx->reopt.triggered = true;
  ctx->reopt.edge_set = spec_.edge_set;
  ctx->reopt.observed_rows = count_;
  ctx->reopt.exact = exact;
  ctx->reopt.flavor = spec_.flavor;
  ctx->reopt.check_lo = spec_.lo;
  ctx->reopt.check_hi = spec_.hi;
  return ExecStatus::kReoptimize;
}

ExecStatus BufCheckOp::OpenImpl(ExecContext* ctx) {
  ctx->materializers.push_back(this);
  count_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  decided_ = false;
  child_eof_ = false;
  event_recorded_ = false;
  work_first_ = -1;
  if (spec_.enabled) {
    TRACE_INSTANT_ARG("checkpoint_armed", "exec", "edge_set",
                      spec_.edge_set);
  }
  const ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  if (!spec_.enabled) {
    decided_ = true;
    return ExecStatus::kOk;
  }
  // Buffer rows ("like a valve", Section 3.3) until the outcome is known.
  // Vectorized fill for enforced checks: the child's batch target is
  // clamped to the rows remaining before the next decision point — the
  // violation threshold for a finite upper bound, the release count for a
  // [lo, inf) valve — so the drain fires or releases at exactly the row
  // the row engine would, with no rows left in a pulled batch.
  // Observation mode keeps the row drain so its decided_ transitions stay
  // row-exact.
  if (ctx->batch_rows > 1 && !spec_.observe_only) {
    const bool finite_hi =
        spec_.hi != std::numeric_limits<double>::infinity();
    const int64_t full_target = ctx->batch_rows;
    RowBatch b;
    while (true) {
      const double stop =
          (finite_hi ? std::floor(spec_.hi) + 1.0 : spec_.lo) -
          static_cast<double>(count_);
      ctx->batch_rows =
          stop < static_cast<double>(full_target)
              ? (stop > 1.0 ? static_cast<int64_t>(stop) : 1)
              : full_target;
      const ExecStatus cs = child_->NextBatch(ctx, &b);
      ctx->batch_rows = full_target;
      if (cs == ExecStatus::kRow) {
        const int64_t n = b.ActiveRows();
        if (count_ == 0 && n > 0) work_first_ = ctx->work;
        const int64_t before = count_;
        if (static_cast<double>(before + n) > spec_.hi) {
          // The row engine buffers the rows before the violating one,
          // counts through it, and fires without emitting anything. With
          // the clamp the violation is the batch's final row; reconcile
          // is defensive for children that over-produce.
          int64_t keep = static_cast<int64_t>(std::floor(spec_.hi)) - before;
          if (keep < 0) keep = 0;
          if (keep > n - 1) keep = n - 1;
          count_ = before + keep + 1;
          if (n - keep - 1 > 0) child_->ReconcileAbort(n - keep - 1);
          Row r;
          for (int64_t i = 0; i < keep; ++i) {
            b.MaterializeRow(i, &r);
            buffer_.push_back(std::move(r));
          }
          return Fire(ctx, /*exact=*/false);
        }
        count_ = before + n;
        b.MoveRowsInto(&buffer_);
        if (!finite_hi && static_cast<double>(count_) >= spec_.lo) {
          // [lo, inf): success is certain; release the valve at the same
          // count the row engine would (the clamp made this batch end on
          // the release row).
          decided_ = true;
          RecordEvent(ctx, /*fired=*/false);
          return ExecStatus::kOk;
        }
      } else if (cs == ExecStatus::kEof) {
        child_eof_ = true;
        if (static_cast<double>(count_) < spec_.lo) {
          const ExecStatus fired = Fire(ctx, /*exact=*/true);
          if (fired == ExecStatus::kReoptimize) return fired;
        }
        decided_ = true;
        RecordEvent(ctx, /*fired=*/false);
        return ExecStatus::kOk;
      } else {
        return cs;
      }
    }
  }
  Row row;
  while (!decided_) {
    const ExecStatus cs = child_->Next(ctx, &row);
    if (cs == ExecStatus::kRow) {
      if (count_ == 0) work_first_ = ctx->work;
      ++count_;
      if (static_cast<double>(count_) > spec_.hi) {
        // Cut short: count is a lower bound; nothing was emitted yet.
        const ExecStatus fired = Fire(ctx, /*exact=*/false);
        if (fired == ExecStatus::kReoptimize) return fired;
      }
      buffer_.push_back(std::move(row));
      if (static_cast<double>(count_) >= spec_.lo &&
          spec_.hi == std::numeric_limits<double>::infinity()) {
        // [lo, inf): success is certain; release the valve.
        decided_ = true;
        RecordEvent(ctx, /*fired=*/false);
      }
    } else if (cs == ExecStatus::kEof) {
      child_eof_ = true;
      if (static_cast<double>(count_) < spec_.lo) {
        const ExecStatus fired = Fire(ctx, /*exact=*/true);
        if (fired == ExecStatus::kReoptimize) return fired;
      }
      decided_ = true;
      RecordEvent(ctx, /*fired=*/false);
    } else {
      return cs;
    }
  }
  return ExecStatus::kOk;
}

ExecStatus BufCheckOp::NextImpl(ExecContext* ctx, Row* out) {
  if (buffer_pos_ < buffer_.size()) {
    ++ctx->work;
    *out = buffer_[buffer_pos_++];
    return ExecStatus::kRow;
  }
  if (child_eof_) {
    return ExecStatus::kEof;
  }
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    ++count_;
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

ExecStatus BufCheckOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (buffer_pos_ < buffer_.size()) {
    const int64_t target = BatchTarget(
        ctx, static_cast<int>(buffer_[buffer_pos_].size()));
    out->Clear();
    while (buffer_pos_ < buffer_.size() && out->num_rows < target) {
      ++ctx->work;
      out->AppendRow(buffer_[buffer_pos_++]);
    }
    return ExecStatus::kRow;
  }
  if (child_eof_) {
    return ExecStatus::kEof;
  }
  // Pass-through after a released valve: count rows like the row path
  // (no work charge — the producers below already charged theirs).
  const ExecStatus s = child_->NextBatch(ctx, out);
  if (s == ExecStatus::kRow) count_ += out->ActiveRows();
  return s;
}

bool BufCheckOp::HarvestInfo(HarvestedResult* out) const {
  out->table_set = spec_.edge_set != 0 ? spec_.edge_set : table_set();
  // The count is exact once the child was exhausted (during buffering or
  // during pass-through); the bounded buffer is never offered for reuse —
  // it may hold only a prefix of the stream.
  out->complete = child_eof_ || eof_seen();
  out->count = count_;
  out->rows = nullptr;
  return true;
}

WorkBoundOp::WorkBoundOp(std::unique_ptr<Operator> child, double work_budget,
                         TableSet edge_set)
    : Operator(child->table_set()),
      child_(std::move(child)),
      work_budget_(work_budget),
      edge_set_(edge_set) {}

ExecStatus WorkBoundOp::OpenImpl(ExecContext* ctx) {
  count_ = 0;
  return child_->Open(ctx);
}

ExecStatus WorkBoundOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    ++count_;
    if (static_cast<double>(ctx->work) > work_budget_) {
      ctx->reopt.triggered = true;
      ctx->reopt.edge_set = edge_set_;
      ctx->reopt.observed_rows = count_;
      ctx->reopt.exact = false;
      ctx->reopt.flavor = CheckFlavor::kWorkBound;
      ctx->reopt.check_lo = 0;
      ctx->reopt.check_hi = work_budget_;
      return ExecStatus::kReoptimize;
    }
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

CheckMaterializedOp::CheckMaterializedOp(std::unique_ptr<Operator> child,
                                         CheckSpec spec)
    : Operator(child->table_set()), child_(std::move(child)), spec_(spec) {}

ExecStatus CheckMaterializedOp::OpenImpl(ExecContext* ctx) {
  const ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  HarvestedResult info;
  const bool has_info = child_->HarvestInfo(&info);
  POPDB_DCHECK(has_info && info.complete);
  if (spec_.enabled) {
    const double card = static_cast<double>(info.count);
    const bool violated = card < spec_.lo || card > spec_.hi;
    CheckEvent ev;
    ev.edge_set = spec_.edge_set;
    ev.flavor = spec_.flavor;
    ev.site = spec_.flavor == CheckFlavor::kLazyEagerMat
                  ? CheckSite::kNljnOuter
                  : CheckSite::kMatPoint;
    ev.work_first = ctx->work;
    ev.work_eval = ctx->work;
    ev.count = info.count;
    ev.fired = violated;
    ctx->check_events.push_back(ev);
    TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                      "exec", "count", ev.count);
    if (violated && !spec_.observe_only) {
      ctx->reopt.triggered = true;
      ctx->reopt.edge_set = spec_.edge_set;
      ctx->reopt.observed_rows = info.count;
      ctx->reopt.exact = true;  // Materialization completed: exact count.
      ctx->reopt.flavor = spec_.flavor;
      ctx->reopt.check_lo = spec_.lo;
      ctx->reopt.check_hi = spec_.hi;
      return ExecStatus::kReoptimize;
    }
  }
  return ExecStatus::kOk;
}

ExecStatus CheckMaterializedOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

ExecStatus RidTrackOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    ctx->returned_rows.push_back(*out);
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

ExecStatus RidTrackOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  const ExecStatus s = child_->NextBatch(ctx, out);
  if (s == ExecStatus::kRow) {
    const int64_t n = out->ActiveRows();
    for (int64_t i = 0; i < n; ++i) {
      Row r;
      out->MaterializeRow(i, &r);
      ctx->returned_rows.push_back(std::move(r));
    }
  }
  return s;
}

AntiCompensateOp::AntiCompensateOp(std::unique_ptr<Operator> child,
                                   const std::vector<Row>& already_returned,
                                   TableSet table_set)
    : Operator(table_set), child_(std::move(child)) {
  for (const Row& row : already_returned) ++remaining_[row];
}

ExecStatus AntiCompensateOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    const ExecStatus s = child_->Next(ctx, out);
    if (s != ExecStatus::kRow) {
      return s;
    }
    ++ctx->work;
    auto it = remaining_.find(*out);
    if (it != remaining_.end() && it->second > 0) {
      --it->second;  // Suppress one previously returned duplicate.
      continue;
    }
    return ExecStatus::kRow;
  }
}

ExecStatus AntiCompensateOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  Row r;
  while (true) {
    const ExecStatus s = child_->NextBatch(ctx, out);
    if (s != ExecStatus::kRow) {
      return s;
    }
    out->EnsureSel();
    const size_t n = out->sel.size();
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      ++ctx->work;
      out->MaterializeRow(static_cast<int64_t>(i), &r);
      auto it = remaining_.find(r);
      if (it != remaining_.end() && it->second > 0) {
        --it->second;  // Suppress one previously returned duplicate.
        continue;
      }
      out->sel[kept++] = out->sel[i];
    }
    out->sel.resize(kept);
    if (kept > 0) return ExecStatus::kRow;
  }
}

}  // namespace popdb
