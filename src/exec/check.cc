#include "exec/check.h"

#include <limits>

#include "common/status.h"

namespace popdb {

CheckOp::CheckOp(std::unique_ptr<Operator> child, CheckSpec spec)
    : Operator(child->table_set()), child_(std::move(child)), spec_(spec) {}

ExecStatus CheckOp::OpenImpl(ExecContext* ctx) {
  count_ = 0;
  work_first_ = -1;
  event_recorded_ = false;
  if (spec_.enabled) {
    TRACE_INSTANT_ARG("checkpoint_armed", "exec", "edge_set",
                      spec_.edge_set);
  }
  return child_->Open(ctx);
}

void CheckOp::RecordEvent(ExecContext* ctx, bool fired) {
  if (event_recorded_) return;
  event_recorded_ = true;
  CheckEvent ev;
  ev.edge_set = spec_.edge_set;
  ev.flavor = spec_.flavor;
  ev.site = spec_.flavor == CheckFlavor::kEagerBuffered
                ? CheckSite::kNljnOuter
                : CheckSite::kPipeline;
  ev.work_first = work_first_;
  ev.work_eval = ctx->work;
  ev.count = count_;
  ev.fired = fired;
  ctx->check_events.push_back(ev);
  TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                    "exec", "count", ev.count);
}

ExecStatus CheckOp::Fire(ExecContext* ctx, bool exact) {
  RecordEvent(ctx, /*fired=*/true);
  if (spec_.observe_only) {
    // Observation mode: note the violation but keep executing.
    return ExecStatus::kRow;
  }
  ctx->reopt.triggered = true;
  ctx->reopt.edge_set = spec_.edge_set;
  ctx->reopt.observed_rows = count_;
  ctx->reopt.exact = exact;
  ctx->reopt.flavor = spec_.flavor;
  ctx->reopt.check_lo = spec_.lo;
  ctx->reopt.check_hi = spec_.hi;
  return ExecStatus::kReoptimize;
}

ExecStatus CheckOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    if (count_ == 0) work_first_ = ctx->work;
    ++count_;
    if (spec_.enabled && static_cast<double>(count_) > spec_.hi) {
      // The observed count is a lower bound on the true cardinality: the
      // stream was cut short (Section 3.4, eager checks).
      const ExecStatus fired = Fire(ctx, /*exact=*/false);
      if (fired == ExecStatus::kReoptimize) return fired;
    }
    return ExecStatus::kRow;
  }
  if (s == ExecStatus::kEof) {
    if (spec_.enabled && static_cast<double>(count_) < spec_.lo) {
      const ExecStatus fired = Fire(ctx, /*exact=*/true);
      if (fired == ExecStatus::kReoptimize) return fired;
    } else if (spec_.enabled) {
      RecordEvent(ctx, /*fired=*/false);
    }
  }
  return s;
}

BufCheckOp::BufCheckOp(std::unique_ptr<Operator> child, CheckSpec spec)
    : Operator(child->table_set()), child_(std::move(child)), spec_(spec) {}

void BufCheckOp::RecordEvent(ExecContext* ctx, bool fired) {
  if (event_recorded_) return;
  event_recorded_ = true;
  CheckEvent ev;
  ev.edge_set = spec_.edge_set;
  ev.flavor = spec_.flavor;
  ev.site = CheckSite::kNljnOuter;
  ev.work_first = work_first_;
  ev.work_eval = ctx->work;
  ev.count = count_;
  ev.fired = fired;
  ctx->check_events.push_back(ev);
  TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                    "exec", "count", ev.count);
}

ExecStatus BufCheckOp::Fire(ExecContext* ctx, bool exact) {
  RecordEvent(ctx, /*fired=*/true);
  if (spec_.observe_only) {
    decided_ = true;  // Keep streaming in observation mode.
    return ExecStatus::kOk;
  }
  ctx->reopt.triggered = true;
  ctx->reopt.edge_set = spec_.edge_set;
  ctx->reopt.observed_rows = count_;
  ctx->reopt.exact = exact;
  ctx->reopt.flavor = spec_.flavor;
  ctx->reopt.check_lo = spec_.lo;
  ctx->reopt.check_hi = spec_.hi;
  return ExecStatus::kReoptimize;
}

ExecStatus BufCheckOp::OpenImpl(ExecContext* ctx) {
  ctx->materializers.push_back(this);
  count_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  decided_ = false;
  child_eof_ = false;
  event_recorded_ = false;
  work_first_ = -1;
  if (spec_.enabled) {
    TRACE_INSTANT_ARG("checkpoint_armed", "exec", "edge_set",
                      spec_.edge_set);
  }
  const ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  if (!spec_.enabled) {
    decided_ = true;
    return ExecStatus::kOk;
  }
  // Buffer rows ("like a valve", Section 3.3) until the outcome is known.
  Row row;
  while (!decided_) {
    const ExecStatus cs = child_->Next(ctx, &row);
    if (cs == ExecStatus::kRow) {
      if (count_ == 0) work_first_ = ctx->work;
      ++count_;
      if (static_cast<double>(count_) > spec_.hi) {
        // Cut short: count is a lower bound; nothing was emitted yet.
        const ExecStatus fired = Fire(ctx, /*exact=*/false);
        if (fired == ExecStatus::kReoptimize) return fired;
      }
      buffer_.push_back(std::move(row));
      if (static_cast<double>(count_) >= spec_.lo &&
          spec_.hi == std::numeric_limits<double>::infinity()) {
        // [lo, inf): success is certain; release the valve.
        decided_ = true;
        RecordEvent(ctx, /*fired=*/false);
      }
    } else if (cs == ExecStatus::kEof) {
      child_eof_ = true;
      if (static_cast<double>(count_) < spec_.lo) {
        const ExecStatus fired = Fire(ctx, /*exact=*/true);
        if (fired == ExecStatus::kReoptimize) return fired;
      }
      decided_ = true;
      RecordEvent(ctx, /*fired=*/false);
    } else {
      return cs;
    }
  }
  return ExecStatus::kOk;
}

ExecStatus BufCheckOp::NextImpl(ExecContext* ctx, Row* out) {
  if (buffer_pos_ < buffer_.size()) {
    ++ctx->work;
    *out = buffer_[buffer_pos_++];
    return ExecStatus::kRow;
  }
  if (child_eof_) {
    return ExecStatus::kEof;
  }
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    ++count_;
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

bool BufCheckOp::HarvestInfo(HarvestedResult* out) const {
  out->table_set = spec_.edge_set != 0 ? spec_.edge_set : table_set();
  // The count is exact once the child was exhausted (during buffering or
  // during pass-through); the bounded buffer is never offered for reuse —
  // it may hold only a prefix of the stream.
  out->complete = child_eof_ || eof_seen();
  out->count = count_;
  out->rows = nullptr;
  return true;
}

WorkBoundOp::WorkBoundOp(std::unique_ptr<Operator> child, double work_budget,
                         TableSet edge_set)
    : Operator(child->table_set()),
      child_(std::move(child)),
      work_budget_(work_budget),
      edge_set_(edge_set) {}

ExecStatus WorkBoundOp::OpenImpl(ExecContext* ctx) {
  count_ = 0;
  return child_->Open(ctx);
}

ExecStatus WorkBoundOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    ++count_;
    if (static_cast<double>(ctx->work) > work_budget_) {
      ctx->reopt.triggered = true;
      ctx->reopt.edge_set = edge_set_;
      ctx->reopt.observed_rows = count_;
      ctx->reopt.exact = false;
      ctx->reopt.flavor = CheckFlavor::kWorkBound;
      ctx->reopt.check_lo = 0;
      ctx->reopt.check_hi = work_budget_;
      return ExecStatus::kReoptimize;
    }
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

CheckMaterializedOp::CheckMaterializedOp(std::unique_ptr<Operator> child,
                                         CheckSpec spec)
    : Operator(child->table_set()), child_(std::move(child)), spec_(spec) {}

ExecStatus CheckMaterializedOp::OpenImpl(ExecContext* ctx) {
  const ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  HarvestedResult info;
  const bool has_info = child_->HarvestInfo(&info);
  POPDB_DCHECK(has_info && info.complete);
  if (spec_.enabled) {
    const double card = static_cast<double>(info.count);
    const bool violated = card < spec_.lo || card > spec_.hi;
    CheckEvent ev;
    ev.edge_set = spec_.edge_set;
    ev.flavor = spec_.flavor;
    ev.site = spec_.flavor == CheckFlavor::kLazyEagerMat
                  ? CheckSite::kNljnOuter
                  : CheckSite::kMatPoint;
    ev.work_first = ctx->work;
    ev.work_eval = ctx->work;
    ev.count = info.count;
    ev.fired = violated;
    ctx->check_events.push_back(ev);
    TRACE_INSTANT_ARG(ev.fired ? "checkpoint_fired" : "checkpoint_evaluated",
                      "exec", "count", ev.count);
    if (violated && !spec_.observe_only) {
      ctx->reopt.triggered = true;
      ctx->reopt.edge_set = spec_.edge_set;
      ctx->reopt.observed_rows = info.count;
      ctx->reopt.exact = true;  // Materialization completed: exact count.
      ctx->reopt.flavor = spec_.flavor;
      ctx->reopt.check_lo = spec_.lo;
      ctx->reopt.check_hi = spec_.hi;
      return ExecStatus::kReoptimize;
    }
  }
  return ExecStatus::kOk;
}

ExecStatus CheckMaterializedOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

ExecStatus RidTrackOp::NextImpl(ExecContext* ctx, Row* out) {
  const ExecStatus s = child_->Next(ctx, out);
  if (s == ExecStatus::kRow) {
    ctx->returned_rows.push_back(*out);
  } else if (s == ExecStatus::kEof) {
  }
  return s;
}

AntiCompensateOp::AntiCompensateOp(std::unique_ptr<Operator> child,
                                   const std::vector<Row>& already_returned,
                                   TableSet table_set)
    : Operator(table_set), child_(std::move(child)) {
  for (const Row& row : already_returned) ++remaining_[row];
}

ExecStatus AntiCompensateOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    const ExecStatus s = child_->Next(ctx, out);
    if (s != ExecStatus::kRow) {
      return s;
    }
    ++ctx->work;
    auto it = remaining_.find(*out);
    if (it != remaining_.end() && it->second > 0) {
      --it->second;  // Suppress one previously returned duplicate.
      continue;
    }
    return ExecStatus::kRow;
  }
}

}  // namespace popdb
