#ifndef POPDB_EXEC_PARALLEL_H_
#define POPDB_EXEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace popdb {

/// Tuning knobs for morsel-driven intra-query parallelism (Hyrise/DuckDB
/// style). Carried from ServiceConfig through the ProgressiveExecutor into
/// the ExecutorBuilder, which decides per plan leaf whether to fan out.
struct ParallelPolicy {
  /// Maximum workers a single parallel fragment may occupy, including the
  /// query's own thread. 1 = serial execution (the default everywhere).
  int dop = 1;

  /// Rows per morsel. Morsels are claimed dynamically from a shared
  /// counter, so stragglers self-balance; the result order is the serial
  /// rid order regardless of this value or who ran which morsel.
  int64_t morsel_rows = 2048;

  /// Tables smaller than this never fan out: the task-group handshake
  /// costs more than scanning a few thousand rows.
  int64_t min_parallel_rows = 4096;

  /// Simulated per-morsel I/O stall in ms, sliced for cancel
  /// responsiveness. Models the page-read wait of a disk-based engine so
  /// scaling experiments (bench_morsel_scaling) can measure overlap
  /// independent of core count — same idea as ServiceConfig::io_stall_ms.
  double morsel_stall_ms = 0.0;

  /// Per-task hash-agg pre-aggregation above a parallel scan. Off by
  /// default: merging per-task partial aggregates reorders floating-point
  /// SUM/AVG addition, so results are only bit-identical to serial
  /// execution for integer/COUNT/MIN/MAX aggregates.
  bool preaggregate = false;

  /// Rows per execution batch (exec/batch.h). Values > 1 run the plan —
  /// including morsel fragments — through the vectorized NextBatch path;
  /// <= 1 selects the row-at-a-time engine. Results, CHECK firings and
  /// harvested feedback are bit-identical either way; this knob only
  /// trades interpretation overhead against batch memory.
  int64_t batch_rows = 1024;

  bool enabled() const { return dop > 1; }
};

class TaskGroup;

/// One claimable unit of work handed to a TaskRunner. Exactly one thread
/// ever runs it: a helper claims it when dequeued, and the owning
/// TaskGroup steals unclaimed tasks back at join time — so a task is never
/// lost when the pool is saturated and never runs twice.
class ParallelTask {
 public:
  ParallelTask(TaskGroup* group, std::function<void()> fn)
      : group_(group), fn_(std::move(fn)) {}

  /// Claims and runs the task if nobody else did. Safe to call from any
  /// thread at any time, including after the owning group joined (the
  /// claim then fails and the group is never touched).
  bool RunIfUnclaimed();

 private:
  TaskGroup* group_;
  std::function<void()> fn_;
  std::atomic<bool> claimed_{false};
};

/// Executes ParallelTasks on helper threads. Implementations (the
/// runtime's MorselDispatcher) may run a task at any later time or never;
/// the submitting TaskGroup reclaims unstarted tasks when it joins, so a
/// rejected or ignored submission only costs parallelism, not
/// correctness.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  /// Offers a task for asynchronous execution. Returns false when the
  /// runner cannot accept it (backpressure); the caller then simply does
  /// the work itself. Never blocks.
  virtual bool TrySubmit(std::shared_ptr<ParallelTask> task) = 0;
};

/// Fans one worker function out across the calling thread plus helper
/// threads and joins. The caller always participates (worker index 0), so
/// a busy or absent runner degrades gracefully to serial execution instead
/// of deadlocking — the pattern that lets QueryService workers double as
/// morsel helpers without reserving threads.
class TaskGroup {
 public:
  /// Runs `fn(worker_index)` on up to `parallelism` workers:
  /// `parallelism - 1` tasks offered to `runner` plus the calling thread.
  /// `fn` must pull its actual work (morsels) from shared state; indices
  /// only label workers. Blocks until every started instance returned and
  /// reclaims tasks no helper picked up. Serial (one inline call) when
  /// `runner` is null or `parallelism <= 1`.
  static void Run(TaskRunner* runner, int parallelism,
                  const std::function<void(int)>& fn);

 private:
  friend class ParallelTask;

  void OnTaskDone();

  std::mutex mu_;
  std::condition_variable cv_;
  int outstanding_ = 0;
};

/// Exchange operator: splits a base-table range into fixed-size morsels,
/// fans a fragment factory across a TaskGroup at Open, and merges the
/// per-morsel outputs in morsel order — so the row stream it serves to the
/// serial tail of the plan is bit-identical to serial execution for any
/// dop or morsel size. CHECK operators sit *above* the exchange and
/// therefore see aggregated row counts (they fire once at the global
/// threshold, never per morsel), and the pull-driven base-class counters
/// make harvested feedback match serial execution exactly: rows_produced
/// counts consumer pulls, not internally materialized rows, so an early
/// CHECK unwind still yields the same lower bound a partial serial scan
/// would have.
class MorselExchangeOp : public Operator {
 public:
  /// Builds the per-morsel fragment over source rows [begin, end) — e.g.
  /// a TBSCAN with a rid range, optionally under FILTER/PROJECT. Invoked
  /// concurrently from morsel tasks; must be pure construction from
  /// immutable inputs.
  using FragmentFactory =
      std::function<std::unique_ptr<Operator>(int64_t begin, int64_t end)>;

  /// Receives rows inside the producing task (hash-agg pre-aggregation).
  /// Called concurrently, but never concurrently for one worker index.
  using RowSink = std::function<void(int worker, const Row& row)>;

  MorselExchangeOp(FragmentFactory factory, int64_t source_rows,
                   TableSet table_set, ParallelPolicy policy)
      : Operator(table_set),
        factory_(std::move(factory)),
        source_rows_(source_rows),
        policy_(policy) {}

  /// Diverts rows to `sink` instead of the reorder buffers: Next() then
  /// reports EOF immediately and the externally consumed row count is
  /// credited to rows_produced so feedback stays exact. Set before Open,
  /// clear (pass nullptr) after; the exchange does not own sink state.
  void SetRowSink(RowSink sink) { sink_ = std::move(sink); }

  const ParallelPolicy& policy() const { return policy_; }
  /// Morsels executed during the last Open (all of them unless aborted).
  int64_t morsels_run() const { return morsels_run_; }
  /// Workers that ran at least one morsel during the last Open.
  int workers_used() const { return workers_used_; }
  /// Fragment-root OperatorStats summed across morsels (Next calls,
  /// timings), aggregated under the exchange's merge lock.
  const OperatorStats& fragment_stats() const { return fragment_stats_; }

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  /// Serves the merged morsel outputs as batches (same rows, same morsel
  /// order as NextImpl; rows are moved out of the reorder buffers).
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "EXCHANGE"; }

 private:
  FragmentFactory factory_;
  int64_t source_rows_;
  ParallelPolicy policy_;
  RowSink sink_;

  /// Per-morsel output, merged in morsel (= rid) order by NextImpl.
  std::vector<std::vector<Row>> buffers_;
  size_t cursor_morsel_ = 0;
  size_t cursor_pos_ = 0;

  int64_t morsels_run_ = 0;
  int workers_used_ = 0;
  OperatorStats fragment_stats_;
};

}  // namespace popdb

#endif  // POPDB_EXEC_PARALLEL_H_
