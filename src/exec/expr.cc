#include "exec/expr.h"

#include "common/status.h"
#include "common/string_util.h"

namespace popdb {

const char* PredKindName(PredKind kind) {
  switch (kind) {
    case PredKind::kEq:
      return "=";
    case PredKind::kNe:
      return "<>";
    case PredKind::kLt:
      return "<";
    case PredKind::kLe:
      return "<=";
    case PredKind::kGt:
      return ">";
    case PredKind::kGe:
      return ">=";
    case PredKind::kBetween:
      return "BETWEEN";
    case PredKind::kIn:
      return "IN";
    case PredKind::kLike:
      return "LIKE";
  }
  return "?";
}

std::string Predicate::ToString() const {
  std::string rhs;
  if (is_param) {
    rhs = StrFormat("?%d", param_index);
  } else if (kind == PredKind::kBetween) {
    rhs = operand.ToString() + " AND " + operand2.ToString();
  } else if (kind == PredKind::kIn) {
    std::vector<std::string> parts;
    for (const Value& v : in_list) parts.push_back(v.ToString());
    rhs = "(" + StrJoin(parts, ", ") + ")";
  } else {
    rhs = operand.ToString();
  }
  return StrFormat("t%d.c%d %s %s", col.table_id, col.column,
                   PredKindName(kind), rhs.c_str());
}

std::string JoinPredicate::ToString() const {
  return StrFormat("t%d.c%d = t%d.c%d", left.table_id, left.column,
                   right.table_id, right.column);
}

bool EvalPredicate(const ResolvedPredicate& pred, const Row& row) {
  return EvalPredicateValue(pred, row[static_cast<size_t>(pred.pos)]);
}

bool EvalPredicateValue(const ResolvedPredicate& pred, const Value& v) {
  if (v.is_null()) return false;
  switch (pred.kind) {
    case PredKind::kEq:
      return v == pred.operand;
    case PredKind::kNe:
      return v != pred.operand;
    case PredKind::kLt:
      return v < pred.operand;
    case PredKind::kLe:
      return v <= pred.operand;
    case PredKind::kGt:
      return v > pred.operand;
    case PredKind::kGe:
      return v >= pred.operand;
    case PredKind::kBetween:
      return v >= pred.operand && v <= pred.operand2;
    case PredKind::kIn:
      for (const Value& candidate : pred.in_list) {
        if (v == candidate) return true;
      }
      return false;
    case PredKind::kLike:
      return v.type() == ValueType::kString &&
             pred.operand.type() == ValueType::kString &&
             LikeMatch(v.AsString(), pred.operand.AsString());
  }
  return false;
}

void EvalPredicateColumn(const ResolvedPredicate& pred,
                         const std::vector<Value>& col,
                         std::vector<int32_t>* sel) {
  size_t kept = 0;
  for (const int32_t r : *sel) {
    if (EvalPredicateValue(pred, col[static_cast<size_t>(r)])) {
      (*sel)[kept++] = r;
    }
  }
  sel->resize(kept);
}

ResolvedPredicate ResolvePredicate(const Predicate& pred, int pos,
                                   const std::vector<Value>& params) {
  ResolvedPredicate out;
  out.pos = pos;
  out.kind = pred.kind;
  if (pred.is_param) {
    POPDB_DCHECK(pred.param_index >= 0 &&
                 pred.param_index < static_cast<int>(params.size()));
    out.operand = params[static_cast<size_t>(pred.param_index)];
  } else {
    out.operand = pred.operand;
  }
  out.operand2 = pred.operand2;
  out.in_list = pred.in_list;
  return out;
}

}  // namespace popdb
