#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace popdb {

namespace {

/// Splits one logical CSV record starting at `*pos` (handles quoted fields
/// spanning the delimiter; newlines inside quotes are supported).
/// Advances `*pos` past the record's newline. An unset optional marks a
/// NULL field (empty unquoted field or the configured null text).
Result<std::vector<std::optional<std::string>>> SplitRecord(
    const std::string& text, size_t* pos, const CsvOptions& options) {
  std::vector<std::optional<std::string>> fields;
  std::string field;
  bool quoted_field = false;
  bool in_quotes = false;
  size_t i = *pos;
  auto finish_field = [&]() {
    if (!quoted_field && (field.empty() || field == options.null_text)) {
      fields.emplace_back(std::nullopt);
    } else {
      fields.emplace_back(std::move(field));
    }
    field.clear();
    quoted_field = false;
  };
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      quoted_field = true;
    } else if (c == options.delimiter) {
      finish_field();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow (handles CRLF).
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  finish_field();
  *pos = i;
  return fields;
}

bool ParsesAsInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool ParsesAsDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<Table> ParseCsv(const std::string& name, const std::string& text,
                       const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::vector<std::optional<std::string>>> records;
  while (pos < text.size()) {
    // Skip truly empty lines (e.g. a trailing newline) — but not
    // single-column records whose only field is NULL.
    while (pos < text.size() && text[pos] == '\r') ++pos;
    if (pos < text.size() && text[pos] == '\n') {
      ++pos;
      continue;
    }
    if (pos >= text.size()) break;
    Result<std::vector<std::optional<std::string>>> rec =
        SplitRecord(text, &pos, options);
    if (!rec.ok()) return rec.status();
    records.push_back(std::move(rec.value()));
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.header) {
    for (const auto& cell : records[0]) {
      names.push_back(cell.value_or(""));
    }
    first_data = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back(StrFormat("c%zu", c));
    }
  }
  const size_t ncols = names.size();
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != ncols) {
      return Status::InvalidArgument(
          StrFormat("CSV record %zu has %zu fields, expected %zu", r,
                    records[r].size(), ncols));
    }
  }

  // Type inference over a sample: start at kInt, widen as needed.
  std::vector<ValueType> types(ncols, ValueType::kInt);
  std::vector<bool> saw_value(ncols, false);
  const size_t sample_end =
      std::min(records.size(),
               first_data + static_cast<size_t>(options.type_inference_rows));
  for (size_t r = first_data; r < sample_end; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      if (!records[r][c].has_value()) continue;
      const std::string& s = *records[r][c];
      saw_value[c] = true;
      if (types[c] == ValueType::kInt && !ParsesAsInt(s)) {
        types[c] = ParsesAsDouble(s) ? ValueType::kDouble : ValueType::kString;
      } else if (types[c] == ValueType::kDouble && !ParsesAsDouble(s)) {
        types[c] = ValueType::kString;
      }
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    if (!saw_value[c]) types[c] = ValueType::kString;
  }

  std::vector<ColumnDef> defs;
  for (size_t c = 0; c < ncols; ++c) {
    defs.push_back(ColumnDef{names[c], types[c]});
  }
  Table table(name, Schema(std::move(defs)));
  table.Reserve(static_cast<int64_t>(records.size() - first_data));
  for (size_t r = first_data; r < records.size(); ++r) {
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      if (!records[r][c].has_value()) {
        row.push_back(Value::Null());
        continue;
      }
      const std::string& s = *records[r][c];
      switch (types[c]) {
        case ValueType::kInt:
          if (!ParsesAsInt(s)) {
            return Status::InvalidArgument(StrFormat(
                "record %zu, column '%s': '%s' is not an integer", r,
                names[c].c_str(), s.c_str()));
          }
          row.push_back(Value::Int(std::strtoll(s.c_str(), nullptr, 10)));
          break;
        case ValueType::kDouble:
          if (!ParsesAsDouble(s)) {
            return Status::InvalidArgument(StrFormat(
                "record %zu, column '%s': '%s' is not a number", r,
                names[c].c_str(), s.c_str()));
          }
          row.push_back(Value::Double(std::strtod(s.c_str(), nullptr)));
          break;
        default:
          row.push_back(Value::String(s));
          break;
      }
    }
    table.AppendRow(std::move(row));
  }
  return table;
}

Status LoadCsvFile(const std::string& name, const std::string& path,
                   Catalog* catalog, const CsvOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<Table> table = ParseCsv(name, buffer.str(), options);
  if (!table.ok()) return table.status();
  Status s = catalog->AddTable(std::move(table.value()));
  if (!s.ok()) return s;
  return catalog->AnalyzeTable(name);
}

}  // namespace popdb
