#include "storage/index.h"

namespace popdb {

HashIndex::HashIndex(const Table& table, int column)
    : table_name_(table.name()), column_(column) {
  map_.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t rid = 0; rid < table.num_rows(); ++rid) {
    map_[table.row(rid)[static_cast<size_t>(column)]].push_back(rid);
  }
}

HashIndex::HashIndex(const std::vector<Row>& rows, int column,
                     std::string name)
    : table_name_(std::move(name)), column_(column) {
  map_.reserve(rows.size());
  for (size_t rid = 0; rid < rows.size(); ++rid) {
    map_[rows[rid][static_cast<size_t>(column)]].push_back(
        static_cast<int64_t>(rid));
  }
}

const std::vector<int64_t>& HashIndex::Probe(const Value& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return empty_;
  return it->second;
}

}  // namespace popdb
