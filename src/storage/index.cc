#include "storage/index.h"

namespace popdb {

HashIndex::HashIndex(const Table& table, int column)
    : table_name_(table.name()), column_(column) {
  const TableSnapshot snap = table.Snapshot();
  map_.reserve(static_cast<size_t>(snap.num_rows()));
  for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
    if (!snap.alive(rid)) continue;
    map_[snap.row(rid)[static_cast<size_t>(column)]].push_back(rid);
  }
}

HashIndex::HashIndex(const std::vector<Row>& rows, int column,
                     std::string name)
    : table_name_(std::move(name)), column_(column) {
  map_.reserve(rows.size());
  for (size_t rid = 0; rid < rows.size(); ++rid) {
    map_[rows[rid][static_cast<size_t>(column)]].push_back(
        static_cast<int64_t>(rid));
  }
}

void HashIndex::ProbeInto(const Value& key, std::vector<int64_t>* out) const {
  out->clear();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) out->assign(it->second.begin(), it->second.end());
}

std::vector<int64_t> HashIndex::Probe(const Value& key) const {
  std::vector<int64_t> out;
  ProbeInto(key, &out);
  return out;
}

void HashIndex::Insert(const Value& key, int64_t rid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_[key].push_back(rid);
}

int64_t HashIndex::num_keys() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(map_.size());
}

}  // namespace popdb
