#include "storage/table.h"

#include <algorithm>

namespace popdb {

namespace {

void CheckRowShape(const Schema& schema, const Row& row) {
  POPDB_DCHECK(static_cast<int>(row.size()) == schema.num_columns());
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    POPDB_DCHECK(v.is_null() || v.type() == schema.column(c).type);
    (void)v;
  }
  (void)schema;
  (void)row;
}

/// Appends `row` to `version`, growing the chunk list as needed. The last
/// chunk must be exclusively owned by `version` (fresh or copy-on-written).
void AppendToVersion(TableVersion* version, Row row) {
  if (version->chunks.empty() ||
      static_cast<int64_t>(version->chunks.back()->rows.size()) ==
          kTableChunkRows) {
    auto chunk = std::make_shared<TableChunk>();
    chunk->rows.reserve(static_cast<size_t>(kTableChunkRows));
    chunk->live.reserve(static_cast<size_t>(kTableChunkRows));
    version->chunks.push_back(std::move(chunk));
  }
  TableChunk& last = *version->chunks.back();
  last.rows.push_back(std::move(row));
  last.live.push_back(1);
  ++version->num_rows;
  ++version->live_rows;
}

}  // namespace

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      head_(std::make_shared<TableVersion>()) {}

Table::Table(Table&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      head_(std::move(other.head_)) {}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    schema_ = std::move(other.schema_);
    head_ = std::move(other.head_);
  }
  return *this;
}

TableSnapshot Table::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ever_snapshotted_ = true;
  return TableSnapshot(this, head_);
}

int64_t Table::num_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_->num_rows;
}

int64_t Table::live_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_->live_rows;
}

const Row& Table::row(int64_t rid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TableChunk& c =
      *head_->chunks[static_cast<size_t>(rid >> kTableChunkShift)];
  return c.rows[static_cast<size_t>(rid & (kTableChunkRows - 1))];
}

bool Table::HeadUnsharedLocked() const {
  // A dropped snapshot decrements use counts without ordering its reads
  // before our writes, so counts alone cannot prove exclusivity — once a
  // snapshot was ever pinned, stay on the copy-on-write path forever.
  if (ever_snapshotted_) return false;
  if (head_.use_count() != 1) return false;
  return head_->chunks.empty() || head_->chunks.back().use_count() == 1;
}

std::shared_ptr<TableVersion> Table::CloneHeadLocked() const {
  auto next = std::make_shared<TableVersion>();
  next->chunks = head_->chunks;  // Share every chunk pointer.
  next->num_rows = head_->num_rows;
  next->live_rows = head_->live_rows;
  return next;
}

void Table::AppendRow(Row row) {
  CheckRowShape(schema_, row);
  std::lock_guard<std::mutex> lock(mu_);
  if (HeadUnsharedLocked()) {
    // Bulk-load fast path: no snapshot can observe the head (use counts
    // are checked under the same mutex Snapshot() pins through), so the
    // append is invisible until a reader pins after us.
    AppendToVersion(head_.get(), std::move(row));
    return;
  }
  std::shared_ptr<TableVersion> next = CloneHeadLocked();
  if (!next->chunks.empty() &&
      static_cast<int64_t>(next->chunks.back()->rows.size()) <
          kTableChunkRows) {
    next->chunks.back() = std::make_shared<TableChunk>(*next->chunks.back());
  }
  AppendToVersion(next.get(), std::move(row));
  head_ = std::move(next);
}

int64_t Table::AppendRows(std::vector<Row> rows) {
  for (const Row& row : rows) CheckRowShape(schema_, row);
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t first_rid = head_->num_rows;
  if (HeadUnsharedLocked()) {
    for (Row& row : rows) AppendToVersion(head_.get(), std::move(row));
    return first_rid;
  }
  std::shared_ptr<TableVersion> next = CloneHeadLocked();
  if (!next->chunks.empty() &&
      static_cast<int64_t>(next->chunks.back()->rows.size()) <
          kTableChunkRows) {
    next->chunks.back() = std::make_shared<TableChunk>(*next->chunks.back());
  }
  for (Row& row : rows) AppendToVersion(next.get(), std::move(row));
  head_ = std::move(next);
  return first_rid;
}

int64_t Table::UpdateRows(const std::vector<int64_t>& rids,
                          const std::function<void(Row*)>& mutate) {
  if (rids.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<TableVersion> next = CloneHeadLocked();
  int64_t updated = 0;
  for (int64_t rid : rids) {
    if (rid < 0 || rid >= next->num_rows) continue;
    const size_t ci = static_cast<size_t>(rid >> kTableChunkShift);
    const size_t off = static_cast<size_t>(rid & (kTableChunkRows - 1));
    if (next->chunks[ci]->live[off] == 0) continue;
    if (next->chunks[ci].use_count() > 1) {
      // Copy-on-write: the chunk is shared with the (possibly pinned)
      // previous version.
      next->chunks[ci] = std::make_shared<TableChunk>(*next->chunks[ci]);
    }
    Row copy = next->chunks[ci]->rows[off];
    mutate(&copy);
    CheckRowShape(schema_, copy);
    next->chunks[ci]->rows[off] = std::move(copy);
    ++updated;
  }
  head_ = std::move(next);  // Single publish: the statement is atomic.
  return updated;
}

int64_t Table::DeleteRows(const std::vector<int64_t>& rids) {
  if (rids.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<TableVersion> next = CloneHeadLocked();
  int64_t deleted = 0;
  for (int64_t rid : rids) {
    if (rid < 0 || rid >= next->num_rows) continue;
    const size_t ci = static_cast<size_t>(rid >> kTableChunkShift);
    const size_t off = static_cast<size_t>(rid & (kTableChunkRows - 1));
    if (next->chunks[ci]->live[off] == 0) continue;
    if (next->chunks[ci].use_count() > 1) {
      next->chunks[ci] = std::make_shared<TableChunk>(*next->chunks[ci]);
    }
    next->chunks[ci]->live[off] = 0;
    --next->live_rows;
    ++deleted;
  }
  head_ = std::move(next);
  return deleted;
}

void Table::Reserve(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // Hint only: skip when a reader may be iterating the chunk list.
  if (!HeadUnsharedLocked()) return;
  head_->chunks.reserve(
      static_cast<size_t>((n + kTableChunkRows - 1) / kTableChunkRows));
}

const TableSnapshot& TableSnapshotSet::Pin(const Table& table) {
  auto it = snapshots_.find(table.name());
  if (it == snapshots_.end()) {
    it = snapshots_.emplace(table.name(), table.Snapshot()).first;
  }
  return it->second;
}

}  // namespace popdb
