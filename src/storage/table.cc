#include "storage/table.h"

namespace popdb {

void Table::AppendRow(Row row) {
  POPDB_DCHECK(static_cast<int>(row.size()) == schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    POPDB_DCHECK(v.is_null() || v.type() == schema_.column(c).type);
  }
  rows_.push_back(std::move(row));
}

}  // namespace popdb
