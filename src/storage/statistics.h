#ifndef POPDB_STORAGE_STATISTICS_H_
#define POPDB_STORAGE_STATISTICS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace popdb {

/// Equi-depth histogram over the numeric interpretation of a column. Each
/// bucket holds ~rows/num_buckets rows; boundaries are stored as doubles.
struct EquiDepthHistogram {
  /// bounds has num_buckets+1 entries; bucket i covers
  /// [bounds[i], bounds[i+1]] (last bucket closed on both ends).
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  int64_t total_rows = 0;

  bool empty() const { return counts.empty(); }

  /// Estimated fraction of rows with column value <= x (interpolating
  /// within a bucket).
  double FractionLeq(double x) const;

  /// Estimated fraction of rows in [lo, hi] (inclusive).
  double FractionBetween(double lo, double hi) const;
};

/// Per-column statistics gathered by CollectTableStats (the engine's
/// RUNSTATS analogue).
struct ColumnStats {
  int64_t num_distinct = 0;
  int64_t null_count = 0;
  /// Min/max over non-null values; unset for empty columns.
  std::optional<Value> min;
  std::optional<Value> max;
  /// Present for numeric columns only.
  EquiDepthHistogram histogram;
};

/// Table-level statistics: row count plus per-column stats.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats& column(int i) const {
    return columns[static_cast<size_t>(i)];
  }
};

/// Scans `table` and computes full statistics. `histogram_buckets` controls
/// equi-depth histogram resolution on numeric columns.
TableStats CollectTableStats(const Table& table, int histogram_buckets = 32);

/// Statistics from a Bernoulli row sample of `table` — the sampled-synopsis
/// approach the paper cites ([HS93]) and one of its estimation-error
/// sources. The exact row count is kept (it is cheap); per-column distinct
/// counts are extrapolated from the sample with the GEE estimator
/// (sqrt(1/q) * f1 + sum_j>=2 fj, where fj counts values seen j times), and
/// histograms are built over the sampled values only.
TableStats CollectTableStatsSampled(const Table& table,
                                    double sample_fraction, uint64_t seed,
                                    int histogram_buckets = 32);

}  // namespace popdb

#endif  // POPDB_STORAGE_STATISTICS_H_
