#include "storage/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"

namespace popdb {

double EquiDepthHistogram::FractionLeq(double x) const {
  if (empty() || total_rows == 0) return 0.5;
  if (x < bounds.front()) return 0.0;
  if (x >= bounds.back()) return 1.0;
  int64_t rows_below = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const double lo = bounds[b];
    const double hi = bounds[b + 1];
    if (x >= hi) {
      rows_below += counts[b];
      continue;
    }
    // x falls inside bucket b: linear interpolation.
    const double width = hi - lo;
    const double frac = width > 0 ? (x - lo) / width : 1.0;
    rows_below += static_cast<int64_t>(frac * static_cast<double>(counts[b]));
    break;
  }
  return static_cast<double>(rows_below) / static_cast<double>(total_rows);
}

double EquiDepthHistogram::FractionBetween(double lo, double hi) const {
  if (empty() || total_rows == 0) return 0.33;
  if (hi < lo) return 0.0;
  const double f = FractionLeq(hi) - FractionLeq(lo);
  return std::max(0.0, std::min(1.0, f));
}

namespace {
/// Shared stats computation over a row-id subset of one pinned snapshot.
/// When `sampled`, null counts are scaled back to the full table and
/// distinct counts are extrapolated with the GEE estimator.
TableStats CollectOverRows(const TableSnapshot& snap, const Schema& schema,
                           const std::vector<int64_t>& rids,
                           bool sampled, double sample_fraction,
                           int histogram_buckets) {
  TableStats stats;
  stats.row_count = snap.live_rows();
  const int ncols = schema.num_columns();
  stats.columns.resize(static_cast<size_t>(ncols));

  for (int c = 0; c < ncols; ++c) {
    ColumnStats& cs = stats.columns[static_cast<size_t>(c)];
    std::unordered_map<Value, int64_t, ValueHash> counts;
    std::vector<double> numeric_values;
    const bool numeric = schema.column(c).type == ValueType::kInt ||
                         schema.column(c).type == ValueType::kDouble;
    if (numeric) numeric_values.reserve(rids.size());

    for (int64_t r : rids) {
      const Value& v = snap.row(r)[static_cast<size_t>(c)];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      ++counts[v];
      if (!cs.min || v < *cs.min) cs.min = v;
      if (!cs.max || v > *cs.max) cs.max = v;
      if (numeric) numeric_values.push_back(v.AsNumeric());
    }
    if (!sampled) {
      cs.num_distinct = static_cast<int64_t>(counts.size());
    } else {
      // GEE: values seen once may stand for many unseen ones; values seen
      // repeatedly are probably just frequent.
      cs.null_count = static_cast<int64_t>(
          static_cast<double>(cs.null_count) / sample_fraction);
      int64_t f1 = 0;
      int64_t repeated = 0;
      for (const auto& [value, n] : counts) {
        if (n == 1) {
          ++f1;
        } else {
          ++repeated;
        }
      }
      const double estimate =
          std::sqrt(1.0 / sample_fraction) * static_cast<double>(f1) +
          static_cast<double>(repeated);
      cs.num_distinct = std::max<int64_t>(
          static_cast<int64_t>(counts.size()),
          static_cast<int64_t>(estimate));
      cs.num_distinct = std::min(cs.num_distinct, stats.row_count);
    }

    if (numeric && !numeric_values.empty()) {
      std::sort(numeric_values.begin(), numeric_values.end());
      const int64_t n = static_cast<int64_t>(numeric_values.size());
      const int nb = std::max(
          1, std::min<int>(histogram_buckets,
                           static_cast<int>(std::min<int64_t>(n, 1 << 20))));
      EquiDepthHistogram& h = cs.histogram;
      h.total_rows = n;
      h.bounds.push_back(numeric_values.front());
      int64_t consumed = 0;
      for (int b = 0; b < nb; ++b) {
        const int64_t target =
            (n * static_cast<int64_t>(b + 1)) / static_cast<int64_t>(nb);
        const int64_t count = target - consumed;
        h.counts.push_back(count);
        consumed = target;
        const size_t bound_idx =
            static_cast<size_t>(std::min<int64_t>(target, n - 1));
        h.bounds.push_back(b + 1 == nb ? numeric_values.back()
                                       : numeric_values[bound_idx]);
      }
    }
  }
  return stats;
}
}  // namespace

TableStats CollectTableStats(const Table& table, int histogram_buckets) {
  const TableSnapshot snap = table.Snapshot();
  std::vector<int64_t> all;
  all.reserve(static_cast<size_t>(snap.live_rows()));
  for (int64_t r = 0; r < snap.num_rows(); ++r) {
    if (snap.alive(r)) all.push_back(r);
  }
  return CollectOverRows(snap, table.schema(), all, /*sampled=*/false, 1.0,
                         histogram_buckets);
}

TableStats CollectTableStatsSampled(const Table& table,
                                    double sample_fraction, uint64_t seed,
                                    int histogram_buckets) {
  sample_fraction = std::clamp(sample_fraction, 1e-6, 1.0);
  Rng rng(seed);
  const TableSnapshot snap = table.Snapshot();
  std::vector<int64_t> sample;
  int64_t first_alive = -1;
  for (int64_t r = 0; r < snap.num_rows(); ++r) {
    if (!snap.alive(r)) continue;
    if (first_alive < 0) first_alive = r;
    if (rng.Bernoulli(sample_fraction)) sample.push_back(r);
  }
  if (sample.empty() && first_alive >= 0) sample.push_back(first_alive);
  return CollectOverRows(snap, table.schema(), sample, /*sampled=*/true,
                         sample_fraction, histogram_buckets);
}

}  // namespace popdb
