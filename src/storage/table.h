#ifndef POPDB_STORAGE_TABLE_H_
#define POPDB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace popdb {

/// An in-memory heap table: a schema plus a row vector. Row ids are the
/// positions in the vector and are stable (no deletes are supported; the
/// engine is append-only, matching what the experiments need).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const Row& row(int64_t rid) const { return rows_[static_cast<size_t>(rid)]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; it must match the schema arity (types are checked in
  /// debug via POPDB_DCHECK against non-null cells).
  void AppendRow(Row row);

  /// Reserves space for `n` rows.
  void Reserve(int64_t n) { rows_.reserve(static_cast<size_t>(n)); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_TABLE_H_
