#ifndef POPDB_STORAGE_TABLE_H_
#define POPDB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace popdb {

class Table;

/// Rows per chunk (power of two so rid -> chunk is a shift/mask).
inline constexpr int kTableChunkShift = 10;
inline constexpr int64_t kTableChunkRows = int64_t{1} << kTableChunkShift;

/// One fixed-capacity slice of a table's row space. Chunks are immutable
/// once shared: a writer may mutate a chunk in place only while it is
/// provably unreachable by any reader (see Table's copy-on-write protocol).
struct TableChunk {
  std::vector<Row> rows;
  /// 1 = live, 0 = tombstoned by a DELETE. Parallel to `rows`.
  std::vector<uint8_t> live;
};

/// An immutable version of a table's contents: the chunk list plus row
/// accounting. Published atomically by writers; readers pin one version for
/// the duration of a query (TableSnapshot), so in-flight scans never see a
/// half-applied statement.
struct TableVersion {
  std::vector<std::shared_ptr<TableChunk>> chunks;
  int64_t num_rows = 0;   ///< Total row slots, tombstones included.
  int64_t live_rows = 0;  ///< Slots not tombstoned.
};

/// A pinned, immutable view of one table version. Copyable and cheap (two
/// pointers); keeps the version (and every chunk it references) alive for
/// as long as any snapshot holds it. Row ids are stable across versions:
/// appends extend the id space, deletes tombstone in place, updates replace
/// the row at its id.
class TableSnapshot {
 public:
  TableSnapshot() = default;
  TableSnapshot(const Table* table, std::shared_ptr<const TableVersion> v)
      : table_(table), version_(std::move(v)) {}

  bool valid() const { return version_ != nullptr; }
  const Table* table() const { return table_; }

  int64_t num_rows() const {
    return version_ == nullptr ? 0 : version_->num_rows;
  }
  int64_t live_rows() const {
    return version_ == nullptr ? 0 : version_->live_rows;
  }
  bool alive(int64_t rid) const {
    const TableChunk& c =
        *version_->chunks[static_cast<size_t>(rid >> kTableChunkShift)];
    return c.live[static_cast<size_t>(rid & (kTableChunkRows - 1))] != 0;
  }
  const Row& row(int64_t rid) const {
    const TableChunk& c =
        *version_->chunks[static_cast<size_t>(rid >> kTableChunkShift)];
    return c.rows[static_cast<size_t>(rid & (kTableChunkRows - 1))];
  }

 private:
  const Table* table_ = nullptr;
  std::shared_ptr<const TableVersion> version_;
};

/// An in-memory heap table with chunked copy-on-write multi-versioning.
///
/// Readers call Snapshot() and see a frozen, consistent version; writers
/// mutate through AppendRow(s)/UpdateRows/DeleteRows, each of which
/// publishes exactly one new version (statement-level atomicity). Only the
/// chunks a statement touches are copied, so a write costs O(touched
/// chunks), not O(table). Before the first snapshot is ever pinned (bulk
/// load), the head version is mutated in place — appends stay O(1).
///
/// Concurrency contract: any number of concurrent readers; mutations must
/// be serialized per table by the caller (txn::WriteManager's per-table
/// write lane, or single-threaded load code). The head-pointer handoff
/// itself is mutex-guarded, so Snapshot() may race freely with a writer.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  /// Moves are for construction-time plumbing (Catalog::AddTable) only;
  /// they must not race with any other access to either table.
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Pins the current version. Thread safe against concurrent writers.
  TableSnapshot Snapshot() const;

  /// Head-version row accounting. Thread safe.
  int64_t num_rows() const;
  int64_t live_rows() const;

  /// Convenience accessor into the head version for load-time and
  /// single-threaded test code. Not safe under concurrent writes (the
  /// reference may dangle when a writer copy-on-writes the chunk) — engine
  /// read paths pin a TableSnapshot instead.
  const Row& row(int64_t rid) const;

  /// Appends a row; it must match the schema arity (types are checked in
  /// debug via POPDB_DCHECK against non-null cells).
  void AppendRow(Row row);

  /// Appends a batch of rows under a single atomic publish; returns the
  /// rid of the first appended row.
  int64_t AppendRows(std::vector<Row> rows);

  /// Replaces the row at each rid via `mutate` (called with a copy of the
  /// current row) under a single atomic publish. Dead rids are skipped.
  /// Returns the number of rows actually updated.
  int64_t UpdateRows(const std::vector<int64_t>& rids,
                     const std::function<void(Row*)>& mutate);

  /// Tombstones each live rid under a single atomic publish; returns the
  /// number of rows newly deleted.
  int64_t DeleteRows(const std::vector<int64_t>& rids);

  /// Hint only (chunked storage grows in fixed slices).
  void Reserve(int64_t n);

 private:
  /// True when the head version is provably unreachable by any reader so
  /// in-place mutation is invisible: no snapshot has EVER been pinned.
  /// The sticky flag (set under mu_ by Snapshot()) is deliberately used
  /// instead of head_.use_count(): a reader that already dropped its
  /// snapshot decrements the count with relaxed ordering, so a use-count
  /// of 1 would not happens-before-order the reader's loads against our
  /// in-place stores. Caller holds mu_.
  bool HeadUnsharedLocked() const;
  /// Clones head_ for copy-on-write: fresh version object, shared chunk
  /// pointers. Caller holds mu_.
  std::shared_ptr<TableVersion> CloneHeadLocked() const;

  std::string name_;
  Schema schema_;

  mutable std::mutex mu_;
  std::shared_ptr<TableVersion> head_;
  /// Set once the first snapshot is pinned; from then on every mutation
  /// copy-on-writes even if all snapshots were since released.
  mutable bool ever_snapshotted_ = false;
};

/// Per-query registry of pinned table snapshots: the first request for a
/// table pins its current version, later requests return the same pin, so
/// every operator (and every re-optimization attempt) of one query
/// execution reads the same frozen data even while writers publish new
/// versions. Not thread safe — owned by the single-threaded plan-build
/// phase; the snapshots it hands out are freely shareable.
class TableSnapshotSet {
 public:
  const TableSnapshot& Pin(const Table& table);

 private:
  std::map<std::string, TableSnapshot> snapshots_;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_TABLE_H_
