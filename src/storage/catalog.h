#ifndef POPDB_STORAGE_CATALOG_H_
#define POPDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/index.h"
#include "storage/statistics.h"
#include "storage/table.h"

namespace popdb {

/// The database catalog: owns base tables, their statistics and their
/// indexes. Temporary materialized views created by progressive
/// re-optimization live in a separate registry (core/matview.h) because
/// they are scoped to one query execution, not to the database.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table`; fails with kAlreadyExists on a duplicate name.
  Status AddTable(Table table);

  /// Returns the table or nullptr.
  const Table* GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Computes statistics for one table (RUNSTATS analogue).
  Status AnalyzeTable(const std::string& name, int histogram_buckets = 32);
  /// Computes statistics from a Bernoulli sample of the table (cheaper and
  /// less accurate — one of the estimation-error sources POP guards
  /// against).
  Status AnalyzeTableSampled(const std::string& name, double sample_fraction,
                             uint64_t seed = 1, int histogram_buckets = 32);
  /// Computes statistics for every table.
  void AnalyzeAll(int histogram_buckets = 32);

  /// Returns stats for `name`, or nullptr if never analyzed.
  const TableStats* GetStats(const std::string& name) const;

  /// Builds a hash index on `table`.`column_name`. Idempotent.
  Status CreateIndex(const std::string& table, const std::string& column_name);

  /// Returns the hash index on (table, column), or nullptr.
  const HashIndex* FindIndex(const std::string& table, int column) const;

  /// Monotone version of everything the optimizer reads from the catalog:
  /// bumped by AddTable, AnalyzeTable/AnalyzeTableSampled/AnalyzeAll
  /// (RUNSTATS) and CreateIndex. Plan-cache entries record the version at
  /// install and are bypassed once it moves — a stats refresh must never
  /// serve a plan chosen under the old statistics.
  int64_t stats_version() const { return stats_version_; }

 private:
  struct Entry {
    std::unique_ptr<Table> table;
    std::unique_ptr<TableStats> stats;
    std::vector<std::unique_ptr<HashIndex>> indexes;
  };

  const Entry* FindEntry(const std::string& name) const;
  Entry* FindEntry(const std::string& name);

  std::map<std::string, Entry> entries_;
  int64_t stats_version_ = 0;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_CATALOG_H_
