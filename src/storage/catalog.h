#ifndef POPDB_STORAGE_CATALOG_H_
#define POPDB_STORAGE_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/index.h"
#include "storage/statistics.h"
#include "storage/table.h"

namespace popdb {

/// The database catalog: owns base tables, their statistics and their
/// indexes. Temporary materialized views created by progressive
/// re-optimization live in a separate registry (core/matview.h) because
/// they are scoped to one query execution, not to the database.
///
/// Concurrency: the table/index *set* is fixed after load (AddTable and
/// CreateIndex are load-time DDL and must not race with queries), but
/// table *contents* and *statistics* change at runtime — tables version
/// themselves (storage/table.h) and statistics swap under a mutex here.
/// GetStats pointers handed to concurrent planners stay valid across a
/// swap: replaced statistics are retired, not freed (folds are
/// threshold-gated, so the retire list stays small).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table`; fails with kAlreadyExists on a duplicate name.
  Status AddTable(Table table);

  /// Returns the table or nullptr.
  const Table* GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Computes statistics for one table (RUNSTATS analogue).
  Status AnalyzeTable(const std::string& name, int histogram_buckets = 32);
  /// Computes statistics from a Bernoulli sample of the table (cheaper and
  /// less accurate — one of the estimation-error sources POP guards
  /// against).
  Status AnalyzeTableSampled(const std::string& name, double sample_fraction,
                             uint64_t seed = 1, int histogram_buckets = 32);
  /// Computes statistics for every table.
  void AnalyzeAll(int histogram_buckets = 32);

  /// Installs `stats` for `name` and bumps the stats version. The write
  /// path's incremental maintenance (txn::StatsDelta) folds its
  /// accumulated deltas into a fresh TableStats and publishes it here once
  /// drift crosses its threshold.
  Status FoldStats(const std::string& name, TableStats stats);

  /// Returns stats for `name`, or nullptr if never analyzed. The pointer
  /// stays valid for the catalog's lifetime even if the stats are later
  /// replaced (retired, not freed).
  const TableStats* GetStats(const std::string& name) const;

  /// Builds a hash index on `table`.`column_name`. Idempotent.
  Status CreateIndex(const std::string& table, const std::string& column_name);

  /// Returns the hash index on (table, column), or nullptr. The index is
  /// internally synchronized; the write path maintains it through
  /// FindMutableIndex / IndexesOn.
  const HashIndex* FindIndex(const std::string& table, int column) const;

  /// Every index on `table` (write-path maintenance).
  std::vector<HashIndex*> IndexesOn(const std::string& table);

  /// Monotone version of everything the optimizer reads from the catalog:
  /// bumped by AddTable, AnalyzeTable/AnalyzeTableSampled/AnalyzeAll
  /// (RUNSTATS), CreateIndex and FoldStats (incremental maintenance).
  /// Plan-cache entries record the version at install and are bypassed
  /// once it moves — a stats refresh must never serve a plan chosen under
  /// the old statistics.
  int64_t stats_version() const {
    return stats_version_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    std::unique_ptr<Table> table;
    std::shared_ptr<const TableStats> stats;
    std::vector<std::unique_ptr<HashIndex>> indexes;
  };

  const Entry* FindEntry(const std::string& name) const;
  Entry* FindEntry(const std::string& name);
  /// Swaps in `stats` for `entry`, retiring the previous pointer, and
  /// bumps the version.
  void PublishStats(Entry* entry, TableStats stats);

  std::map<std::string, Entry> entries_;
  std::atomic<int64_t> stats_version_{0};

  /// Guards stats pointer swaps and the retire list (reads of the stats
  /// pointer also take it; the returned raw pointer outlives the lock by
  /// the retire guarantee).
  mutable std::mutex stats_mu_;
  std::vector<std::shared_ptr<const TableStats>> retired_stats_;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_CATALOG_H_
