#ifndef POPDB_STORAGE_CSV_H_
#define POPDB_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace popdb {

/// Options for CSV ingestion.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names. If false, columns are named c0, c1, ...
  bool header = true;
  /// Literal text treated as NULL (in addition to an empty unquoted field).
  std::string null_text = "";
  /// Rows to sample for type inference (int -> double -> string widening).
  int type_inference_rows = 1000;
};

/// Parses CSV `text` into a table named `name`. Column types are inferred
/// from the data: a column is kInt if every non-null sample parses as an
/// integer, kDouble if every sample parses as a number, kString otherwise.
/// Quoted fields ("...", with "" as the escaped quote) are supported.
Result<Table> ParseCsv(const std::string& name, const std::string& text,
                       const CsvOptions& options = {});

/// Reads `path` and loads it as table `name` into `catalog`, then analyzes
/// it. The adoption path for bringing external data into the engine.
Status LoadCsvFile(const std::string& name, const std::string& path,
                   Catalog* catalog, const CsvOptions& options = {});

}  // namespace popdb

#endif  // POPDB_STORAGE_CSV_H_
