#ifndef POPDB_STORAGE_SCHEMA_H_
#define POPDB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace popdb {

/// A named, typed column in a table schema.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered list of columns describing one table's row layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the index of column `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Renders "name:type, name:type, ...".
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_SCHEMA_H_
