#ifndef POPDB_STORAGE_INDEX_H_
#define POPDB_STORAGE_INDEX_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace popdb {

/// Hash index over one column of a table, mapping value -> row ids. Used by
/// the executor for index nested-loop join probes and by the optimizer to
/// decide whether an index access path exists.
///
/// The index is maintained incrementally by the write path as a *superset*
/// posting list: INSERT appends the new rid, UPDATE appends a posting for
/// the new value (the old value's posting is left behind), DELETE leaves
/// the tombstoned rid in place. Probes therefore return candidates, and the
/// executor re-checks both the indexed condition and snapshot liveness per
/// candidate — which it must do anyway for snapshot-consistent reads, since
/// a probe sees the index's present while the query reads a pinned past.
///
/// Thread safe: probes take a shared lock and copy the postings out;
/// Insert takes an exclusive lock (serialized per table by the write lane).
class HashIndex {
 public:
  /// Builds the index over a snapshot of `table.column(column)`.
  HashIndex(const Table& table, int column);

  /// Builds the index over a materialized row vector (row ids are the
  /// vector positions). Used when the re-optimizer decides to index a
  /// temporary materialized view before reusing it (paper Section 2.3).
  HashIndex(const std::vector<Row>& rows, int column, std::string name);

  int column() const { return column_; }
  const std::string& table_name() const { return table_name_; }

  /// Copies the row ids whose indexed column may equal `key` into `*out`
  /// (cleared first). Candidates are a superset under writes; callers
  /// re-check the actual row.
  void ProbeInto(const Value& key, std::vector<int64_t>* out) const;

  /// Convenience probe returning the candidates by value.
  std::vector<int64_t> Probe(const Value& key) const;

  /// Write-path maintenance: records that `rid`'s indexed column now holds
  /// `key`.
  void Insert(const Value& key, int64_t rid);

  /// Number of distinct keys in the index.
  int64_t num_keys() const;

 private:
  std::string table_name_;
  int column_;
  mutable std::shared_mutex mu_;
  std::unordered_map<Value, std::vector<int64_t>, ValueHash> map_;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_INDEX_H_
