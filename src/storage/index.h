#ifndef POPDB_STORAGE_INDEX_H_
#define POPDB_STORAGE_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace popdb {

/// Hash index over one column of a table, mapping value -> row ids. Used by
/// the executor for index nested-loop join probes and by the optimizer to
/// decide whether an index access path exists.
///
/// The index is built once over the full table; it does not track appends
/// made after construction (the engine loads data before querying).
class HashIndex {
 public:
  /// Builds the index over `table.column(column)`.
  HashIndex(const Table& table, int column);

  /// Builds the index over a materialized row vector (row ids are the
  /// vector positions). Used when the re-optimizer decides to index a
  /// temporary materialized view before reusing it (paper Section 2.3).
  HashIndex(const std::vector<Row>& rows, int column, std::string name);

  int column() const { return column_; }
  const std::string& table_name() const { return table_name_; }

  /// Returns row ids whose indexed column equals `key` (empty if none).
  const std::vector<int64_t>& Probe(const Value& key) const;

  /// Number of distinct keys in the index.
  int64_t num_keys() const { return static_cast<int64_t>(map_.size()); }

 private:
  std::string table_name_;
  int column_;
  std::unordered_map<Value, std::vector<int64_t>, ValueHash> map_;
  std::vector<int64_t> empty_;
};

}  // namespace popdb

#endif  // POPDB_STORAGE_INDEX_H_
