#include "storage/catalog.h"

namespace popdb {

Status Catalog::AddTable(Table table) {
  const std::string name = table.name();
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  Entry entry;
  entry.table = std::make_unique<Table>(std::move(table));
  entries_.emplace(name, std::move(entry));
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

const Catalog::Entry* Catalog::FindEntry(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Catalog::Entry* Catalog::FindEntry(const std::string& name) {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const Table* Catalog::GetTable(const std::string& name) const {
  const Entry* e = FindEntry(name);
  return e == nullptr ? nullptr : e->table.get();
}

Table* Catalog::GetMutableTable(const std::string& name) {
  Entry* e = FindEntry(name);
  return e == nullptr ? nullptr : e->table.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void Catalog::PublishStats(Entry* entry, TableStats stats) {
  auto fresh = std::make_shared<const TableStats>(std::move(stats));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (entry->stats != nullptr) retired_stats_.push_back(entry->stats);
    entry->stats = std::move(fresh);
  }
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
}

Status Catalog::AnalyzeTable(const std::string& name, int histogram_buckets) {
  Entry* e = FindEntry(name);
  if (e == nullptr) return Status::NotFound("no such table: " + name);
  PublishStats(e, CollectTableStats(*e->table, histogram_buckets));
  return Status::Ok();
}

Status Catalog::AnalyzeTableSampled(const std::string& name,
                                    double sample_fraction, uint64_t seed,
                                    int histogram_buckets) {
  Entry* e = FindEntry(name);
  if (e == nullptr) return Status::NotFound("no such table: " + name);
  PublishStats(e, CollectTableStatsSampled(*e->table, sample_fraction, seed,
                                           histogram_buckets));
  return Status::Ok();
}

void Catalog::AnalyzeAll(int histogram_buckets) {
  for (auto& [name, entry] : entries_) {
    auto fresh = std::make_shared<const TableStats>(
        CollectTableStats(*entry.table, histogram_buckets));
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (entry.stats != nullptr) retired_stats_.push_back(entry.stats);
    entry.stats = std::move(fresh);
  }
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
}

Status Catalog::FoldStats(const std::string& name, TableStats stats) {
  Entry* e = FindEntry(name);
  if (e == nullptr) return Status::NotFound("no such table: " + name);
  PublishStats(e, std::move(stats));
  return Status::Ok();
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  const Entry* e = FindEntry(name);
  if (e == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(stats_mu_);
  return e->stats.get();
}

Status Catalog::CreateIndex(const std::string& table,
                            const std::string& column_name) {
  Entry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no such table: " + table);
  const int col = e->table->schema().IndexOf(column_name);
  if (col < 0) {
    return Status::NotFound("no such column: " + table + "." + column_name);
  }
  for (const auto& idx : e->indexes) {
    if (idx->column() == col) return Status::Ok();
  }
  e->indexes.push_back(std::make_unique<HashIndex>(*e->table, col));
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

const HashIndex* Catalog::FindIndex(const std::string& table,
                                    int column) const {
  const Entry* e = FindEntry(table);
  if (e == nullptr) return nullptr;
  for (const auto& idx : e->indexes) {
    if (idx->column() == column) return idx.get();
  }
  return nullptr;
}

std::vector<HashIndex*> Catalog::IndexesOn(const std::string& table) {
  std::vector<HashIndex*> out;
  Entry* e = FindEntry(table);
  if (e == nullptr) return out;
  out.reserve(e->indexes.size());
  for (const auto& idx : e->indexes) out.push_back(idx.get());
  return out;
}

}  // namespace popdb
