#include "storage/catalog.h"

namespace popdb {

Status Catalog::AddTable(Table table) {
  const std::string name = table.name();
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  Entry entry;
  entry.table = std::make_unique<Table>(std::move(table));
  entries_.emplace(name, std::move(entry));
  ++stats_version_;
  return Status::Ok();
}

const Catalog::Entry* Catalog::FindEntry(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Catalog::Entry* Catalog::FindEntry(const std::string& name) {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const Table* Catalog::GetTable(const std::string& name) const {
  const Entry* e = FindEntry(name);
  return e == nullptr ? nullptr : e->table.get();
}

Table* Catalog::GetMutableTable(const std::string& name) {
  Entry* e = FindEntry(name);
  return e == nullptr ? nullptr : e->table.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

Status Catalog::AnalyzeTable(const std::string& name, int histogram_buckets) {
  Entry* e = FindEntry(name);
  if (e == nullptr) return Status::NotFound("no such table: " + name);
  e->stats = std::make_unique<TableStats>(
      CollectTableStats(*e->table, histogram_buckets));
  ++stats_version_;
  return Status::Ok();
}

Status Catalog::AnalyzeTableSampled(const std::string& name,
                                    double sample_fraction, uint64_t seed,
                                    int histogram_buckets) {
  Entry* e = FindEntry(name);
  if (e == nullptr) return Status::NotFound("no such table: " + name);
  e->stats = std::make_unique<TableStats>(CollectTableStatsSampled(
      *e->table, sample_fraction, seed, histogram_buckets));
  ++stats_version_;
  return Status::Ok();
}

void Catalog::AnalyzeAll(int histogram_buckets) {
  for (auto& [name, entry] : entries_) {
    entry.stats = std::make_unique<TableStats>(
        CollectTableStats(*entry.table, histogram_buckets));
  }
  ++stats_version_;
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  const Entry* e = FindEntry(name);
  return e == nullptr ? nullptr : e->stats.get();
}

Status Catalog::CreateIndex(const std::string& table,
                            const std::string& column_name) {
  Entry* e = FindEntry(table);
  if (e == nullptr) return Status::NotFound("no such table: " + table);
  const int col = e->table->schema().IndexOf(column_name);
  if (col < 0) {
    return Status::NotFound("no such column: " + table + "." + column_name);
  }
  for (const auto& idx : e->indexes) {
    if (idx->column() == col) return Status::Ok();
  }
  e->indexes.push_back(std::make_unique<HashIndex>(*e->table, col));
  ++stats_version_;
  return Status::Ok();
}

const HashIndex* Catalog::FindIndex(const std::string& table,
                                    int column) const {
  const Entry* e = FindEntry(table);
  if (e == nullptr) return nullptr;
  for (const auto& idx : e->indexes) {
    if (idx->column() == column) return idx.get();
  }
  return nullptr;
}

}  // namespace popdb
