#include "dmv/dmv_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace popdb::dmv {

namespace {
const char* const kStates[8] = {"CA", "NY", "TX", "FL",
                                "WA", "IL", "MA", "OR"};
const char* const kCounties[12] = {"ALAMEDA", "KINGS",   "TRAVIS", "DADE",
                                   "KING",    "COOK",    "SUFFOLK", "MARION",
                                   "ORANGE",  "SHASTA",  "LANE",    "YOLO"};
const char* const kProviders[6] = {"ACME", "GEKKO", "SAFEDRIVE",
                                   "ROADSTAR", "METRO", "PIONEER"};
const char* const kViolationTypes[10] = {
    "SPEEDING", "PARKING", "DUI", "RED LIGHT", "NO INSURANCE",
    "EXPIRED TAG", "RECKLESS", "SEATBELT", "PHONE", "OTHER"};

int64_t Floor1(double v) {
  return std::max<int64_t>(1, static_cast<int64_t>(v));
}
}  // namespace

int64_t RowsAtScale(const char* table, double scale) {
  const std::string t = table;
  if (t == "owner") return Floor1(10000 * scale);
  if (t == "car") return Floor1(20000 * scale);
  if (t == "registration") return Floor1(25000 * scale);
  if (t == "accident") return Floor1(5000 * scale);
  if (t == "insurance") return Floor1(15000 * scale);
  if (t == "violation") return Floor1(8000 * scale);
  if (t == "inspection") return Floor1(12000 * scale);
  if (t == "dealer") return Floor1(300 * scale);
  return 0;
}

Status BuildCatalog(const GenConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  const double sf = config.scale;
  const int64_t n_owner = RowsAtScale("owner", sf);
  const int64_t n_car = RowsAtScale("car", sf);

  // ---- OWNER. ZIPs are uniform; AGE is correlated with ZIP. Owners are
  // bucketed by zip so CAR generation can realize the ZIP <-> MAKE join
  // correlation.
  std::vector<std::vector<int64_t>> owners_by_zip(
      static_cast<size_t>(kNumZips));
  {
    Table owner("owner", Schema({{"o_id", ValueType::kInt},
                                 {"o_zip", ValueType::kInt},
                                 {"o_age", ValueType::kInt},
                                 {"o_state", ValueType::kString},
                                 {"o_name", ValueType::kString}}));
    owner.Reserve(n_owner);
    for (int64_t i = 0; i < n_owner; ++i) {
      const int64_t zip = rng.UniformInt(0, kNumZips - 1);
      const int64_t age = 18 + (zip % 50) + rng.UniformInt(0, 9);
      owners_by_zip[static_cast<size_t>(zip)].push_back(i);
      owner.AppendRow(
          {Value::Int(i), Value::Int(zip), Value::Int(age),
           Value::String(kStates[zip % 8]),
           Value::String(StrFormat("Owner#%06lld",
                                   static_cast<long long>(i)))});
    }
    Status s = catalog->AddTable(std::move(owner));
    if (!s.ok()) return s;
  }

  // ---- CAR. MODEL determines MAKE and WEIGHT; COLOR follows MODEL with
  // high probability; the owner of a car with make m clusters in the ZIP
  // band [m * band, (m + 1) * band).
  {
    Table car("car", Schema({{"c_id", ValueType::kInt},
                             {"c_owner_id", ValueType::kInt},
                             {"c_make", ValueType::kInt},
                             {"c_model", ValueType::kInt},
                             {"c_color", ValueType::kInt},
                             {"c_year", ValueType::kInt},
                             {"c_weight", ValueType::kInt},
                             {"c_mileage", ValueType::kInt}}));
    car.Reserve(n_car);
    for (int64_t i = 0; i < n_car; ++i) {
      const int64_t model = rng.UniformInt(0, kNumModels - 1);
      const int64_t make = model / kModelsPerMake;
      const int64_t weight = model % kNumWeights;
      const int64_t color =
          rng.Bernoulli(config.color_model_correlation)
              ? (model * 7) % kNumColors
              : rng.UniformInt(0, kNumColors - 1);
      int64_t owner_id = rng.UniformInt(0, n_owner - 1);
      if (rng.Bernoulli(config.zip_make_correlation)) {
        // ZIP <-> MAKE join correlation: owners of make m cluster in the
        // zip band [m * band, (m + 1) * band).
        const int64_t band = kNumZips / kNumMakes;
        const int64_t zip = make * band + rng.UniformInt(0, band - 1);
        const auto& bucket = owners_by_zip[static_cast<size_t>(zip)];
        if (!bucket.empty()) {
          owner_id = bucket[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(bucket.size()) - 1))];
        }
      }
      car.AppendRow({Value::Int(i), Value::Int(owner_id), Value::Int(make),
                     Value::Int(model), Value::Int(color),
                     Value::Int(1990 + rng.UniformInt(0, 29)),
                     Value::Int(weight),
                     Value::Int(rng.UniformInt(0, 300000))});
    }
    Status s = catalog->AddTable(std::move(car));
    if (!s.ok()) return s;
  }

  struct ChildSpec {
    const char* name;
    const char* id_col;
    const char* fk_col;
    int64_t parent_rows;
  };
  // ---- REGISTRATION / ACCIDENT / INSURANCE / INSPECTION reference CAR;
  // VIOLATION references OWNER.
  {
    Table reg("registration", Schema({{"r_id", ValueType::kInt},
                                      {"r_car_id", ValueType::kInt},
                                      {"r_year", ValueType::kInt},
                                      {"r_county", ValueType::kString}}));
    const int64_t n = RowsAtScale("registration", sf);
    reg.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      reg.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, n_car - 1)),
                     Value::Int(2010 + rng.UniformInt(0, 14)),
                     Value::String(kCounties[rng.UniformInt(0, 11)])});
    }
    Status s = catalog->AddTable(std::move(reg));
    if (!s.ok()) return s;
  }
  {
    Table acc("accident", Schema({{"a_id", ValueType::kInt},
                                  {"a_car_id", ValueType::kInt},
                                  {"a_year", ValueType::kInt},
                                  {"a_severity", ValueType::kInt}}));
    const int64_t n = RowsAtScale("accident", sf);
    acc.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      acc.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, n_car - 1)),
                     Value::Int(2005 + rng.UniformInt(0, 19)),
                     Value::Int(rng.UniformInt(1, 5))});
    }
    Status s = catalog->AddTable(std::move(acc));
    if (!s.ok()) return s;
  }
  {
    Table ins("insurance", Schema({{"i_id", ValueType::kInt},
                                   {"i_car_id", ValueType::kInt},
                                   {"i_provider", ValueType::kString},
                                   {"i_premium", ValueType::kDouble}}));
    const int64_t n = RowsAtScale("insurance", sf);
    ins.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      ins.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, n_car - 1)),
                     Value::String(kProviders[rng.UniformInt(0, 5)]),
                     Value::Double(300 + rng.UniformDouble() * 2700)});
    }
    Status s = catalog->AddTable(std::move(ins));
    if (!s.ok()) return s;
  }
  {
    Table vio("violation", Schema({{"v_id", ValueType::kInt},
                                   {"v_owner_id", ValueType::kInt},
                                   {"v_type", ValueType::kString},
                                   {"v_points", ValueType::kInt}}));
    const int64_t n = RowsAtScale("violation", sf);
    vio.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      vio.AppendRow({Value::Int(i),
                     Value::Int(rng.UniformInt(0, n_owner - 1)),
                     Value::String(kViolationTypes[rng.UniformInt(0, 9)]),
                     Value::Int(rng.UniformInt(0, 6))});
    }
    Status s = catalog->AddTable(std::move(vio));
    if (!s.ok()) return s;
  }
  {
    Table insp("inspection", Schema({{"p_id", ValueType::kInt},
                                     {"p_car_id", ValueType::kInt},
                                     {"p_year", ValueType::kInt},
                                     {"p_result", ValueType::kString}}));
    const int64_t n = RowsAtScale("inspection", sf);
    insp.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      insp.AppendRow({Value::Int(i),
                      Value::Int(rng.UniformInt(0, n_car - 1)),
                      Value::Int(2015 + rng.UniformInt(0, 9)),
                      Value::String(rng.Bernoulli(0.85) ? "PASS" : "FAIL")});
    }
    Status s = catalog->AddTable(std::move(insp));
    if (!s.ok()) return s;
  }
  {
    Table dealer("dealer", Schema({{"d_id", ValueType::kInt},
                                   {"d_make", ValueType::kInt},
                                   {"d_zip", ValueType::kInt}}));
    const int64_t n = RowsAtScale("dealer", sf);
    dealer.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      dealer.AppendRow({Value::Int(i),
                        Value::Int(rng.UniformInt(0, kNumMakes - 1)),
                        Value::Int(rng.UniformInt(0, kNumZips - 1))});
    }
    Status s = catalog->AddTable(std::move(dealer));
    if (!s.ok()) return s;
  }

  catalog->AnalyzeAll(config.histogram_buckets);

  if (config.build_indexes) {
    // Primary keys and the hottest FK only: like the paper's customer
    // database, many join columns have no index, so a nested-loop join
    // into them scans the inner per outer row — catastrophic whenever the
    // outer cardinality was underestimated.
    const std::pair<const char*, const char*> indexes[] = {
        {"owner", "o_id"},
        {"car", "c_id"},
        {"car", "c_owner_id"},
        {"violation", "v_owner_id"},
    };
    for (const auto& [table, column] : indexes) {
      Status s = catalog->CreateIndex(table, column);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace popdb::dmv
