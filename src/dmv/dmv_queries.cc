#include "dmv/dmv_queries.h"

#include <string>

#include "common/rng.h"
#include "common/string_util.h"
#include "dmv/dmv_gen.h"

namespace popdb::dmv {

namespace {

/// One child-table kind that can be joined into a query.
enum class Child {
  kOwner,
  kRegistration,
  kAccident,
  kInsurance,
  kInspection,
  kViolation,  ///< Joins OWNER, so requires it.
  kDealer,     ///< Joins CAR on make (non-key join).
};

/// Adds a child instance with its join predicate; returns its table id.
int AddChild(QuerySpec* q, Child kind, int car, int owner) {
  switch (kind) {
    case Child::kOwner: {
      const int t = q->AddTable("owner");
      q->AddJoin({car, Car::kOwnerId}, {t, Owner::kId});
      return t;
    }
    case Child::kRegistration: {
      const int t = q->AddTable("registration");
      q->AddJoin({t, Registration::kCarId}, {car, Car::kId});
      return t;
    }
    case Child::kAccident: {
      const int t = q->AddTable("accident");
      q->AddJoin({t, Accident::kCarId}, {car, Car::kId});
      return t;
    }
    case Child::kInsurance: {
      const int t = q->AddTable("insurance");
      q->AddJoin({t, Insurance::kCarId}, {car, Car::kId});
      return t;
    }
    case Child::kInspection: {
      const int t = q->AddTable("inspection");
      q->AddJoin({t, Inspection::kCarId}, {car, Car::kId});
      return t;
    }
    case Child::kViolation: {
      const int t = q->AddTable("violation");
      q->AddJoin({t, Violation::kOwnerId}, {owner, Owner::kId});
      return t;
    }
    case Child::kDealer: {
      const int t = q->AddTable("dealer");
      q->AddJoin({t, Dealer::kMake}, {car, Car::kMake});
      return t;
    }
  }
  return -1;
}

/// Adds the correlated CAR predicate bundle. `style` selects how many
/// functionally dependent columns are restricted together; the literals
/// are chosen consistently (all derived from the same model), so the
/// predicates are satisfiable and the true selectivity is that of the most
/// selective member — while the independence assumption multiplies them.
void AddCarBundle(QuerySpec* q, int car, int style, int64_t model) {
  const int64_t make = model / kModelsPerMake;
  const int64_t weight = model % kNumWeights;
  const int64_t color = (model * 7) % kNumColors;
  switch (style) {
    case 0:  // make + model: ~kNumMakes-fold underestimate.
      q->AddPred({car, Car::kMake}, PredKind::kEq, Value::Int(make));
      q->AddPred({car, Car::kModel}, PredKind::kEq, Value::Int(model));
      break;
    case 1:  // make + model + weight: ~kNumMakes*kNumWeights-fold.
      q->AddPred({car, Car::kMake}, PredKind::kEq, Value::Int(make));
      q->AddPred({car, Car::kModel}, PredKind::kEq, Value::Int(model));
      q->AddPred({car, Car::kWeight}, PredKind::kEq, Value::Int(weight));
      break;
    case 2:  // make + model + weight + color: up to ~2e4-fold.
      q->AddPred({car, Car::kMake}, PredKind::kEq, Value::Int(make));
      q->AddPred({car, Car::kModel}, PredKind::kEq, Value::Int(model));
      q->AddPred({car, Car::kWeight}, PredKind::kEq, Value::Int(weight));
      q->AddPred({car, Car::kColor}, PredKind::kEq, Value::Int(color));
      break;
    case 3:  // model + weight: ~kNumWeights-fold.
      q->AddPred({car, Car::kModel}, PredKind::kEq, Value::Int(model));
      q->AddPred({car, Car::kWeight}, PredKind::kEq, Value::Int(weight));
      break;
    case 4:  // Control: make only — the estimate is accurate.
      q->AddPred({car, Car::kMake}, PredKind::kEq, Value::Int(make));
      break;
    default:  // Control: weight range — accurate from the histogram.
      q->AddPred({car, Car::kWeight}, PredKind::kLe,
                 Value::Int(weight % kNumWeights));
      break;
  }
}

/// Adds a plausible restriction on a child instance.
void AddChildPred(QuerySpec* q, Child kind, int t, Rng* rng) {
  switch (kind) {
    case Child::kOwner:
      switch (rng->UniformInt(0, 2)) {
        case 0: {
          const int64_t lo = 20 + rng->UniformInt(0, 40);
          q->AddPred({t, Owner::kAge}, PredKind::kBetween, Value::Int(lo),
                     Value::Int(lo + 10));
          break;
        }
        case 1:
          q->AddPred({t, Owner::kZip}, PredKind::kLt,
                     Value::Int(rng->UniformInt(100, 900)));
          break;
        default:
          q->AddPred({t, Owner::kName}, PredKind::kLike,
                     Value::String(StrFormat(
                         "Owner#%lld%%",
                         static_cast<long long>(rng->UniformInt(0, 9)))));
          break;
      }
      break;
    case Child::kRegistration:
      q->AddInPred({t, Registration::kYear},
                   {Value::Int(2010 + rng->UniformInt(0, 4)),
                    Value::Int(2015 + rng->UniformInt(0, 4)),
                    Value::Int(2020 + rng->UniformInt(0, 4))});
      break;
    case Child::kAccident:
      q->AddPred({t, Accident::kSeverity}, PredKind::kGe,
                 Value::Int(rng->UniformInt(2, 4)));
      break;
    case Child::kInsurance:
      if (rng->Bernoulli(0.5)) {
        q->AddPred({t, Insurance::kProvider}, PredKind::kEq,
                   Value::String("ACME"));
      } else {
        q->AddPred({t, Insurance::kPremium}, PredKind::kGt,
                   Value::Double(1500 + rng->UniformDouble() * 1000));
      }
      break;
    case Child::kInspection:
      if (rng->Bernoulli(0.4)) {
        q->AddPred({t, Inspection::kResult}, PredKind::kEq,
                   Value::String("FAIL"));
      } else {
        q->AddPred({t, Inspection::kYear}, PredKind::kGe,
                   Value::Int(2015 + rng->UniformInt(0, 8)));
      }
      break;
    case Child::kViolation:
      q->AddInPred({t, Violation::kType},
                   {Value::String("SPEEDING"), Value::String("DUI"),
                    Value::String("RECKLESS")});
      break;
    case Child::kDealer:
      q->AddPred({t, Dealer::kZip}, PredKind::kLt,
                 Value::Int(rng->UniformInt(200, 900)));
      break;
  }
}

}  // namespace

std::vector<QuerySpec> MakeWorkload(const WorkloadConfig& config) {
  std::vector<QuerySpec> out;
  out.reserve(static_cast<size_t>(config.num_queries));
  Rng rng(config.seed);

  for (int qi = 0; qi < config.num_queries; ++qi) {
    QuerySpec q(StrFormat("dmv_q%02d", qi + 1));
    const int car = q.AddTable("car");

    // Child instances: OWNER is frequent; others drawn with repetition.
    int owner = -1;
    const int extra = 2 + static_cast<int>(rng.UniformInt(
                              0, config.max_extra_tables - 2));
    std::vector<std::pair<Child, int>> children;
    if (rng.Bernoulli(0.8)) {
      owner = AddChild(&q, Child::kOwner, car, -1);
      children.emplace_back(Child::kOwner, owner);
    }
    static const Child kPool[] = {Child::kRegistration, Child::kAccident,
                                  Child::kInsurance, Child::kInspection,
                                  Child::kViolation, Child::kDealer};
    while (static_cast<int>(children.size()) < extra) {
      const Child kind = kPool[rng.UniformInt(0, 5)];
      if (kind == Child::kViolation && owner < 0) continue;
      const int t = AddChild(&q, kind, car, owner);
      children.emplace_back(kind, t);
    }

    // Correlated CAR bundle: 2/3 of the queries restrict correlated
    // columns (cardinality traps); 1/3 are controls.
    const int style = static_cast<int>(rng.UniformInt(0, 5));
    const int64_t model = rng.UniformInt(0, kNumModels - 1);
    AddCarBundle(&q, car, style, model);

    // ZIP <-> MAKE join correlation trap: restricting the owner's zip to
    // the make's band looks independent to the optimizer (selectivity
    // band/kNumZips) but actually keeps ~80% of the joined rows.
    if (owner >= 0 && rng.Bernoulli(0.5)) {
      const int64_t make = model / kModelsPerMake;
      const int64_t band = kNumZips / kNumMakes;
      q.AddPred({owner, Owner::kZip}, PredKind::kBetween,
                Value::Int(make * band), Value::Int((make + 1) * band - 1));
    }

    // One restriction on about half of the child instances.
    for (const auto& [kind, t] : children) {
      if (kind == Child::kViolation) {
        q.AddPred({t, Violation::kPoints}, PredKind::kGe,
                  Value::Int(rng.UniformInt(1, 4)));
        continue;
      }
      if (rng.Bernoulli(0.55)) AddChildPred(&q, kind, t, &rng);
    }

    // Group by a low-cardinality column and aggregate.
    if (owner >= 0 && rng.Bernoulli(0.5)) {
      q.AddGroupBy({owner, Owner::kState});
    } else {
      q.AddGroupBy({car, Car::kColor});
    }
    if (rng.Bernoulli(0.5)) {
      q.AddAgg(AggFunc::kCount);
    } else {
      q.AddAgg(AggFunc::kSum, {car, Car::kMileage});
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace popdb::dmv
