#ifndef POPDB_DMV_DMV_GEN_H_
#define POPDB_DMV_DMV_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/catalog.h"

namespace popdb::dmv {

/// Column positions of the synthetic department-of-motor-vehicles database
/// (the paper's Section 6 case study). The generator engineers the
/// correlations the paper reports for the real customer database:
///   - MODEL functionally determines MAKE and WEIGHT class,
///   - COLOR is strongly correlated with MODEL,
///   - owners of a MAKE cluster in ZIP ranges (join correlation),
///   - AGE is correlated with ZIP.
/// Predicates restricting several of these columns make an
/// independence-assuming estimator underestimate by orders of magnitude.
struct Owner {
  enum : int { kId = 0, kZip, kAge, kState, kName };
};
struct Car {
  enum : int {
    kId = 0,
    kOwnerId,
    kMake,     ///< int, kNumMakes distinct; = model / kModelsPerMake.
    kModel,    ///< int, kNumModels distinct.
    kColor,    ///< int, kNumColors distinct; correlated with model.
    kYear,
    kWeight,   ///< int, kNumWeights distinct; = model % kNumWeights.
    kMileage,
  };
};
struct Registration {
  enum : int { kId = 0, kCarId, kYear, kCounty };
};
struct Accident {
  enum : int { kId = 0, kCarId, kYear, kSeverity };
};
struct Insurance {
  enum : int { kId = 0, kCarId, kProvider, kPremium };
};
struct Violation {
  enum : int { kId = 0, kOwnerId, kType, kPoints };
};
struct Inspection {
  enum : int { kId = 0, kCarId, kYear, kResult };
};
struct Dealer {
  enum : int { kId = 0, kMake, kZip };
};

inline constexpr int kNumMakes = 50;
inline constexpr int kNumModels = 1000;
inline constexpr int kModelsPerMake = kNumModels / kNumMakes;
inline constexpr int kNumColors = 20;
inline constexpr int kNumWeights = 20;
inline constexpr int kNumZips = 1000;

/// Generator parameters; `scale` multiplies all row counts.
struct GenConfig {
  double scale = 1.0;
  uint64_t seed = 77;
  int histogram_buckets = 32;
  bool build_indexes = true;
  /// Probability that a car's owner is drawn from the make-correlated ZIP
  /// cluster instead of uniformly.
  double zip_make_correlation = 0.8;
  /// Probability that a car's color follows its model's dominant color.
  double color_model_correlation = 0.8;
};

/// Base row counts at scale 1.0.
int64_t RowsAtScale(const char* table, double scale);

/// Generates the DMV database into `catalog`, collects statistics and
/// builds key indexes.
Status BuildCatalog(const GenConfig& config, Catalog* catalog);

}  // namespace popdb::dmv

#endif  // POPDB_DMV_DMV_GEN_H_
