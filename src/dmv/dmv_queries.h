#ifndef POPDB_DMV_DMV_QUERIES_H_
#define POPDB_DMV_DMV_QUERIES_H_

#include <cstdint>
#include <vector>

#include "opt/query.h"

namespace popdb::dmv {

/// Parameters of the synthetic DMV decision-support workload (the paper's
/// 39 real-world queries, Section 6).
struct WorkloadConfig {
  int num_queries = 39;
  uint64_t seed = 2004;
  /// Maximum extra joined table instances beyond CAR (instances of the
  /// same table may repeat, mirroring the paper's >10-table joins).
  int max_extra_tables = 7;
};

/// Generates the workload: complex multi-join aggregation queries whose
/// CAR predicates restrict correlated columns (MAKE/MODEL/WEIGHT/COLOR),
/// so an independence-assuming optimizer underestimates their
/// cardinalities by one to six orders of magnitude — the error source the
/// paper reports for the DMV customer database. A fraction of queries
/// restrict only uncorrelated columns and act as controls (accurate
/// estimates, POP should not trigger).
std::vector<QuerySpec> MakeWorkload(const WorkloadConfig& config = {});

}  // namespace popdb::dmv

#endif  // POPDB_DMV_DMV_QUERIES_H_
