#include "runtime/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/span.h"
#include "core/leo.h"
#include "opt/plan_cache.h"
#include "txn/write_manager.h"

namespace popdb {

namespace {
const char* PriorityName(QueryPriority p) {
  return p == QueryPriority::kHigh ? "high" : "normal";
}

const char* OutcomeName(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline";
    default:
      return "error";
  }
}
}  // namespace

// ------------------------------------------------------------ QueryTicket

const QueryResult& QueryTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool QueryTicket::WaitForMs(double timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [this] { return done_; });
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

// ------------------------------------------------------------ QueryService

QueryService::QueryService(const Catalog& catalog, ServiceConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  if (config_.num_workers < 1) config_.num_workers = 1;
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  // Service-level incremental-reopt switch: both it and the PopConfig knob
  // must be on for executors to keep the DP memo across attempts.
  if (!config_.incremental_reopt) config_.pop.incremental_reopt = false;

  MetricsRegistry& registry = metrics_.registry();
  for (int f = 0; f < 6; ++f) {
    flavor_fired_[f] = registry.GetCounter(
        "popdb_checks_fired_by_flavor_total",
        "CHECK violations by checkpoint flavor.",
        std::string("flavor=\"") +
            CheckFlavorName(static_cast<CheckFlavor>(f)) + "\"");
  }
  // Q-error is >= 1 by definition; 1..~1e6 in doubling buckets.
  qerror_hist_ = registry.GetHistogram(
      "popdb_operator_qerror",
      "Per-operator cardinality Q-error (max(est/act, act/est)) observed "
      "by EXPLAIN ANALYZE profiles.",
      Histogram::LogBuckets(1.0, 2.0, 20));
  queue_depth_ = registry.GetGauge("popdb_admission_queue_depth",
                                   "Queries queued, not yet dispatched.");
  feedback_lookups_ = registry.GetGauge(
      "popdb_feedback_seed_lookups",
      "Compilations that consulted the shared feedback store.");
  feedback_hits_ = registry.GetGauge(
      "popdb_feedback_seed_hits",
      "Compilations seeded with at least one learned cardinality.");
  feedback_seeded_ = registry.GetGauge(
      "popdb_feedback_seeded_cards",
      "Learned cardinalities handed to compilations in total.");

  for (int op = 0; op < 3; ++op) {
    writes_total_[op] = registry.GetCounter(
        "popdb_writes_total", "DML statements applied, by operation.",
        std::string("op=\"") +
            txn::WriteOpName(static_cast<txn::WriteOp>(op)) + "\"");
  }
  stats_version_bumps_ = registry.GetCounter(
      "popdb_stats_version_bumps_total",
      "Catalog stats-version bumps caused by write-path statistics folds "
      "(accumulated churn crossed the drift threshold).");

  if (config_.use_pop) {
    reopt_incremental_hits_ = registry.GetCounter(
        "popdb_reopt_incremental_hits",
        "DP memo entries reused by incremental re-optimizations instead of "
        "being re-enumerated.");
    reopt_incremental_invalidated_ = registry.GetCounter(
        "popdb_reopt_incremental_invalidated_entries",
        "DP memo entries invalidated because their table set contained an "
        "edge whose observed cardinality changed.");
  }

  if (config_.use_pop && config_.plan_cache_entries > 0) {
    PlanCacheConfig cache_config;
    cache_config.max_entries = config_.plan_cache_entries;
    cache_config.validity_hits = config_.plan_cache_validity_hits;
    plan_cache_ = std::make_unique<PlanCache>(cache_config);

    plan_cache_lookups_ = registry.GetGauge(
        "popdb_plan_cache_lookups",
        "Plan-cache lookups (first optimization attempts).");
    plan_cache_hits_ = registry.GetGauge(
        "popdb_plan_cache_hits",
        "Lookups served from the plan cache (DP enumeration skipped).");
    plan_cache_misses_ = registry.GetGauge(
        "popdb_plan_cache_misses",
        "Lookups that fell through to full optimization (cold, stale, "
        "epoch-invalidated, or validity-violated).");
    plan_cache_invalidations_ = registry.GetGauge(
        "popdb_plan_cache_invalidations",
        "Entries evicted as invalid (stats refresh / matview DDL epoch "
        "bumps and validity-range violations).");
    plan_cache_stale_stats_evictions_ = registry.GetGauge(
        "popdb_plan_cache_stale_stats_evictions_total",
        "Plan-cache entries evicted because the catalog stats version "
        "moved since install (write-path statistics folds).");
    plan_cache_installs_ = registry.GetGauge(
        "popdb_plan_cache_installs",
        "Optimized plan skeletons installed into the cache.");
    plan_cache_size_ = registry.GetGauge(
        "popdb_plan_cache_size", "Plan-cache entries currently resident.");
    plan_cache_near_misses_ = registry.GetGauge(
        "popdb_plan_cache_near_misses",
        "Lookups whose signature matched but whose feedback digest moved; "
        "their stale skeleton warm-starts incremental re-optimization.");
    // Entry ages span sub-ms re-submissions to long-lived sessions;
    // 0.5ms..~4.4min in doubling buckets.
    plan_cache_hit_age_ = registry.GetHistogram(
        "popdb_plan_cache_hit_age_ms",
        "Age of plan-cache entries at the moment they were served.",
        Histogram::LogBuckets(0.5, 2.0, 20));
  }

  if (config_.query_log_entries > 0) {
    query_log_ = std::make_unique<QueryLog>(config_.query_log_entries);
  }

  if (config_.intra_query_dop > 1) {
    // External-worker mode: the service's own workers drain the morsel
    // queue whenever they are not running a query, so intra-query
    // parallelism never over-subscribes the pool.
    morsel_pool_ = std::make_unique<MorselDispatcher>(
        MorselDispatcher::ExternalWorkersTag{},
        /*queue_capacity=*/config_.num_workers * 8 + 64);
    morsel_pool_->set_notify([this] { cv_.notify_all(); });

    morsels_total_ = registry.GetCounter(
        "popdb_morsels_dispatched_total",
        "Morsels executed by parallel plan fragments.");
    parallel_work_total_ = registry.GetCounter(
        "popdb_parallel_work_units_total",
        "Work units performed inside morsel-parallel fragments.");
    work_total_ = registry.GetCounter(
        "popdb_work_units_total",
        "Work units performed by all queries (parallel-fraction "
        "denominator).");
    // Fraction in [0, 1]; eighth-wide linear buckets.
    parallel_fraction_ = registry.GetHistogram(
        "popdb_query_parallel_fraction",
        "Per-query share of execution work done in parallel fragments.",
        {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0});
    morsel_submitted_ = registry.GetGauge(
        "popdb_morsel_tasks_submitted",
        "Morsel tasks accepted by the dispatcher queue.");
    morsel_rejected_ = registry.GetGauge(
        "popdb_morsel_tasks_rejected",
        "Morsel tasks refused on backpressure (ran inline instead).");
    morsel_ran_ = registry.GetGauge(
        "popdb_morsel_tasks_ran",
        "Morsel tasks claimed and run by helper workers.");
    morsel_stale_ = registry.GetGauge(
        "popdb_morsel_tasks_stale",
        "Morsel tasks stolen back by their owner before a helper got "
        "there.");
    morsel_active_ = registry.GetGauge(
        "popdb_morsel_workers_active",
        "Workers currently inside a helper-claimed morsel task "
        "(per-pipeline thread occupancy).");
  }

  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

Result<std::shared_ptr<QueryTicket>> QueryService::Submit(
    QuerySpec query, SubmitOptions opts) {
  metrics_.OnSubmitted();
  std::shared_ptr<QueryTicket> ticket(new QueryTicket(std::move(query)));
  ticket->priority_ = opts.priority;
  ticket->session_id_ = config_.share_feedback ? 0 : opts.session_id;
  ticket->query_id_ = next_query_id_.fetch_add(1);
  ticket->submit_ms_ = NowMs();
  ticket->trace_token_ = opts.trace_token.empty()
                             ? "q" + std::to_string(ticket->query_id_)
                             : std::move(opts.trace_token);
  const double deadline_ms =
      opts.deadline_ms < 0 ? config_.default_deadline_ms : opts.deadline_ms;
  if (deadline_ms > 0) ticket->cancel_.SetDeadlineAfterMs(deadline_ms);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      metrics_.OnRejected();
      return Status::InvalidArgument("query service is shut down");
    }
    if (static_cast<int>(lanes_[0].size() + lanes_[1].size()) >=
        config_.queue_capacity) {
      metrics_.OnRejected();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(config_.queue_capacity) +
          " pending queries)");
    }
    lanes_[static_cast<int>(ticket->priority_)].push_back(ticket);
    metrics_.OnAdmitted();
    queue_depth_->Set(static_cast<int64_t>(lanes_[0].size()) +
                      static_cast<int64_t>(lanes_[1].size()));
  }
  cv_.notify_one();
  return ticket;
}

QueryResult QueryService::ExecuteSync(QuerySpec query, SubmitOptions opts) {
  Result<std::shared_ptr<QueryTicket>> ticket =
      Submit(std::move(query), opts);
  if (!ticket.ok()) {
    QueryResult result;
    result.status = ticket.status();
    return result;
  }
  return ticket.value()->Wait();
}

void QueryService::Shutdown(bool drain) {
  std::vector<std::shared_ptr<QueryTicket>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      if (!drain) {
        for (auto& lane : lanes_) {
          for (auto& t : lane) {
            t->Cancel();
            dropped.push_back(std::move(t));
          }
          lane.clear();
        }
      }
    }
  }
  // Complete dropped tickets as cancelled (outside the queue lock).
  for (const auto& t : dropped) {
    QueryResult result;
    result.status =
        Status::Cancelled("query '" + t->query_.name() +
                          "' dropped: service shut down before execution");
    QueryTrace trace;
    trace.queue_ms = NowMs() - t->submit_ms_;
    FinishTicket(t, std::move(result), std::move(trace));
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // All queries are done; stop accepting morsel tasks. Anything still
  // queued is stolen back and run inline by its owning TaskGroup.
  if (morsel_pool_ != nullptr) morsel_pool_->Shutdown();
}

void QueryService::WorkerLoop() {
  while (true) {
    std::shared_ptr<QueryTicket> ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return shutdown_ || !lanes_[0].empty() || !lanes_[1].empty() ||
               (morsel_pool_ != nullptr && morsel_pool_->HasQueued());
      });
      // Morsel tasks first: finishing in-flight queries beats admitting
      // new ones, and every queued morsel has a worker blocked on it.
      if (morsel_pool_ != nullptr && morsel_pool_->HasQueued()) {
        lock.unlock();
        while (morsel_pool_->TryRunOne()) {
        }
        continue;
      }
      // High lane first; FIFO within a lane.
      if (!lanes_[1].empty()) {
        ticket = std::move(lanes_[1].front());
        lanes_[1].pop_front();
      } else if (!lanes_[0].empty()) {
        ticket = std::move(lanes_[0].front());
        lanes_[0].pop_front();
      } else {
        return;  // shutdown_ and both lanes empty
      }
      queue_depth_->Set(static_cast<int64_t>(lanes_[0].size()) +
                        static_cast<int64_t>(lanes_[1].size()));
    }
    RunOne(ticket);
  }
}

QueryFeedbackStore* QueryService::FeedbackFor(uint64_t session_id) {
  if (config_.share_feedback) return &shared_feedback_;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::unique_ptr<QueryFeedbackStore>& store = session_feedback_[session_id];
  if (store == nullptr) store = std::make_unique<QueryFeedbackStore>();
  return store.get();
}

void QueryService::RunOne(const std::shared_ptr<QueryTicket>& ticket) {
  QueryTrace trace;
  trace.query_id = ticket->query_id_;
  trace.query_name = ticket->query_.name();
  trace.session_id = ticket->session_id_;
  trace.priority = PriorityName(ticket->priority_);
  trace.shared_feedback = config_.share_feedback;
  trace.queue_ms = NowMs() - ticket->submit_ms_;

  if (config_.io_stall_ms > 0 && !ticket->cancel_.Expired()) {
    // Simulated I/O stall, sliced so cancellation stays responsive.
    double remaining_ms = config_.io_stall_ms;
    while (remaining_ms > 0 && !ticket->cancel_.Expired()) {
      const double slice = remaining_ms < 1.0 ? remaining_ms : 1.0;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining_ms -= slice;
    }
  }

  // Root span of the query's timeline, tagged with its trace token so
  // shard-side spans carrying the same token stitch under it. Recorded
  // manually (not RAII) so it is already in the buffer when FinishTicket
  // wakes the client — a spans request racing the scope exit would
  // otherwise miss it.
  SpanTracer& tracer = SpanTracer::Global();
  const bool span_active = tracer.enabled();
  const int64_t span_start_us = span_active ? tracer.NowUs() : 0;

  QueryResult result;
  ExecutionStats stats;
  bool executed = false;
  if (ticket->cancel_.Expired()) {
    // Cancelled (or past deadline) while still queued: never execute.
    result.status =
        ticket->cancel_.reason() == CancelReason::kDeadline
            ? Status::DeadlineExceeded("query '" + trace.query_name +
                                       "' exceeded its deadline in the queue")
            : Status::Cancelled("query '" + trace.query_name +
                                "' cancelled while queued");
  } else if (config_.dist_backend != nullptr &&
             config_.dist_backend->CanExecute(ticket->query_)) {
    // Scatter-gather execution across shards. The distributed path skips
    // the local plan cache and matview reuse (shard results never
    // materialize here) but shares the cross-query feedback store, so
    // cluster-harvested cardinalities seed later compilations too.
    executed = true;
    DistQueryInfo info;
    info.query_id = ticket->query_id_;
    info.trace_token = ticket->trace_token_;
    Result<std::vector<Row>> rows = config_.dist_backend->Execute(
        ticket->query_, &ticket->cancel_, FeedbackFor(ticket->session_id_),
        &stats, info);
    FillTraceFromStats(stats, &trace);
    result.status = rows.status();
    if (rows.ok()) result.rows = std::move(rows).TakeValue();
    metrics_.OnReopts(stats.reopts, trace.checks_fired);
    if (reopt_incremental_hits_ != nullptr) {
      reopt_incremental_hits_->Increment(stats.memo_entries_reused);
      reopt_incremental_invalidated_->Increment(
          stats.memo_entries_invalidated);
    }
  } else {
    executed = true;
    ProgressiveExecutor exec(catalog_, config_.optimizer, config_.pop);
    exec.set_cross_query_store(FeedbackFor(ticket->session_id_));
    exec.set_plan_cache(plan_cache_.get());
    exec.set_cancel_token(&ticket->cancel_);
    ParallelPolicy parallel;
    parallel.batch_rows = config_.exec_batch_rows;
    if (morsel_pool_ != nullptr) {
      parallel.dop = config_.intra_query_dop;
      parallel.morsel_rows = config_.morsel_rows;
      parallel.min_parallel_rows = config_.min_parallel_rows;
    }
    // A null pool leaves execution serial; the policy still carries the
    // execution batch size.
    exec.set_parallel(morsel_pool_.get(), parallel);
    Result<std::vector<Row>> rows =
        config_.use_pop ? exec.Execute(ticket->query_, &stats)
                        : exec.ExecuteStatic(ticket->query_, &stats);
    FillTraceFromStats(stats, &trace);
    result.status = rows.status();
    if (rows.ok()) result.rows = std::move(rows).TakeValue();

    if (morsel_pool_ != nullptr) {
      morsels_total_->Increment(stats.morsels_dispatched);
      parallel_work_total_->Increment(stats.parallel_work);
      work_total_->Increment(stats.total_work);
      if (stats.total_work > 0) {
        parallel_fraction_->Observe(static_cast<double>(stats.parallel_work) /
                                    static_cast<double>(stats.total_work));
      }
    }
    if (plan_cache_ != nullptr &&
        (stats.plan_cache == PlanCacheOutcome::kHit ||
         stats.plan_cache == PlanCacheOutcome::kValidityHit)) {
      plan_cache_hit_age_->Observe(stats.plan_cache_age_ms);
    }
    metrics_.OnReopts(stats.reopts, trace.checks_fired);
    if (reopt_incremental_hits_ != nullptr) {
      reopt_incremental_hits_->Increment(stats.memo_entries_reused);
      reopt_incremental_invalidated_->Increment(
          stats.memo_entries_invalidated);
    }
  }

  if (executed) {
    // Engine diagnostics shared by both execution paths: the distributed
    // coordinator reports CHECK firings and per-shard profiles through the
    // same ExecutionStats shape the local executor uses.
    if (trace.checks_fired > 0) {
      std::lock_guard<std::mutex> lock(history_mu_);
      for (const CheckEvent& ev : stats.check_events) {
        if (!ev.fired) continue;
        ++check_history_[QueryFeedbackStore::SubplanSignature(ticket->query_,
                                                              ev.edge_set)];
      }
    }
    for (const CheckEvent& ev : stats.check_events) {
      if (ev.fired) flavor_fired_[static_cast<int>(ev.flavor)]->Increment();
    }
    for (const AttemptInfo& a : stats.attempts) {
      if (a.has_profile) ObserveQErrors(a.profile);
    }
  }

  if (span_active) {
    tracer.RecordSpan("query", "service", span_start_us,
                      tracer.NowUs() - span_start_us, "query_id",
                      ticket->query_id_, tracer.Intern(ticket->trace_token_));
  }
  FinishTicket(ticket, std::move(result), std::move(trace),
               executed ? &stats : nullptr);
}

void QueryService::FinishTicket(const std::shared_ptr<QueryTicket>& ticket,
                                QueryResult result, QueryTrace trace,
                                const ExecutionStats* stats) {
  trace.total_ms = NowMs() - ticket->submit_ms_;
  trace.outcome = OutcomeName(result.status);
  if (!result.status.ok()) trace.status_message = result.status.ToString();

  if (query_log_ != nullptr) {
    QueryLogEntry entry;
    entry.query_id = trace.query_id;
    entry.end_ms = NowMs();
    entry.query_name = trace.query_name;
    entry.signature = QueryCacheSignature(ticket->query_);
    entry.outcome = trace.outcome;
    entry.status_message = trace.status_message;
    entry.plan_cache = trace.plan_cache;
    entry.reopts = trace.reopts;
    entry.checks_fired = trace.checks_fired;
    entry.queue_ms = trace.queue_ms;
    entry.optimize_ms = trace.optimize_ms;
    entry.execute_ms = trace.execute_ms;
    entry.total_ms = trace.total_ms;
    entry.result_rows = trace.result_rows;
    if (stats != nullptr) {
      for (const CheckEvent& ev : stats->check_events) {
        if (ev.fired) ++entry.flavor_fired[static_cast<int>(ev.flavor)];
      }
    }
    if (!trace.attempts.empty()) {
      const TraceAttempt& last = trace.attempts.back();
      entry.plan_digest = PlanTextDigest(last.plan_text);
      entry.distributed = !last.shards.empty();
      entry.shards = last.shards;
    }
    for (const TraceAttempt& a : trace.attempts) {
      if (a.has_profile) {
        entry.peak_qerror =
            std::max(entry.peak_qerror, PeakProfileQError(a.profile));
      }
    }
    query_log_->Append(std::move(entry));
  }

  switch (result.status.code()) {
    case StatusCode::kOk:
      metrics_.OnCompleted();
      break;
    case StatusCode::kCancelled:
      metrics_.OnCancelled();
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.OnDeadlineExpired();
      break;
    default:
      metrics_.OnFailed();
  }
  metrics_.RecordLatency(trace.total_ms);

  result.trace = trace;
  if (config_.trace_sink != nullptr) config_.trace_sink->Emit(trace);

  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    ticket->result_ = std::move(result);
    ticket->done_ = true;
  }
  ticket->cv_.notify_all();
}

void QueryService::ObserveQErrors(const PlanProfileNode& node) {
  const double q = node.QError();
  if (q >= 0) qerror_hist_->Observe(q);
  for (const PlanProfileNode& child : node.children) ObserveQErrors(child);
}

std::string QueryService::MetricsText() {
  // The feedback store keeps its own counters; mirror them into gauges at
  // scrape time (per-session stores, used when share_feedback is off, are
  // not aggregated here).
  feedback_lookups_->Set(shared_feedback_.seed_lookups());
  feedback_hits_->Set(shared_feedback_.seed_hits());
  feedback_seeded_->Set(shared_feedback_.seeded_cards());
  if (plan_cache_ != nullptr) {
    const PlanCache::Stats ps = plan_cache_->stats();
    plan_cache_lookups_->Set(ps.lookups);
    plan_cache_hits_->Set(ps.hits + ps.validity_hits);
    plan_cache_misses_->Set(ps.misses());
    plan_cache_invalidations_->Set(ps.evictions_invalid);
    plan_cache_stale_stats_evictions_->Set(ps.evictions_stale_stats);
    plan_cache_installs_->Set(ps.installs);
    plan_cache_size_->Set(plan_cache_->size());
    plan_cache_near_misses_->Set(ps.near_misses);
  }
  if (morsel_pool_ != nullptr) {
    const MorselDispatcher::Stats ms = morsel_pool_->stats();
    morsel_submitted_->Set(ms.submitted);
    morsel_rejected_->Set(ms.rejected);
    morsel_ran_->Set(ms.ran);
    morsel_stale_->Set(ms.stale);
    morsel_active_->Set(morsel_pool_->active());
  }
  return metrics_.registry().RenderPrometheus();
}

WriteQueryResult QueryService::ExecuteWrite(const txn::WriteStatement& stmt) {
  WriteQueryResult out;
  out.query_id = next_query_id_.fetch_add(1);
  const double start_ms = NowMs();

  if (write_manager_ == nullptr) {
    out.status = Status::InvalidArgument(
        "no write path attached: this service is read-only");
  } else {
    Result<txn::WriteResult> applied = write_manager_->Apply(stmt);
    out.status = applied.status();
    if (applied.ok()) {
      out.affected_rows = applied.value().affected_rows;
      out.stats_version = applied.value().stats_version;
      out.stats_folded = applied.value().stats_folded;
    }
  }
  out.total_ms = NowMs() - start_ms;

  if (out.status.ok()) {
    writes_total_[static_cast<int>(stmt.op)]->Increment();
    if (out.stats_folded) stats_version_bumps_->Increment();
  }

  if (query_log_ != nullptr) {
    QueryLogEntry entry;
    entry.query_id = out.query_id;
    entry.end_ms = NowMs();
    entry.kind = "write";
    entry.query_name =
        std::string(txn::WriteOpName(stmt.op)) + " " + stmt.table;
    entry.outcome = OutcomeName(out.status);
    if (!out.status.ok()) entry.status_message = out.status.ToString();
    entry.total_ms = out.total_ms;
    entry.execute_ms = out.total_ms;
    entry.affected_rows = out.status.ok() ? out.affected_rows : 0;
    query_log_->Append(std::move(entry));
  }
  return out;
}

std::map<std::string, int64_t> QueryService::CheckHistory() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return check_history_;
}

}  // namespace popdb
