#ifndef POPDB_RUNTIME_SESSION_H_
#define POPDB_RUNTIME_SESSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/cancel.h"
#include "common/status.h"
#include "runtime/query_service.h"
#include "runtime/trace.h"

namespace popdb {

/// Registry of client sessions and their in-flight queries: the bridge
/// between a connection-oriented front end (src/net) and QueryService's
/// ticket model. It hands out session ids, keeps the process-wide
/// query-id -> ticket table that `cancel`-by-id requests resolve against,
/// and bounds the number of unfinished queries a single session may hold
/// (admission control per client, on top of the service's global queue
/// bound).
///
/// Thread safe; every front-end connection worker calls into one shared
/// instance. Tickets are held as shared_ptr, so a registered query stays
/// cancellable even after its owning session disconnected.
class SessionRegistry {
 public:
  SessionRegistry() = default;
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Opens a session and returns its id (ids start at 1; 0 is never a
  /// valid session).
  uint64_t OpenSession();

  /// Closes a session: its still-unfinished queries are cancelled and
  /// dropped from the table. Unknown ids are ignored (idempotent — a
  /// connection may close after an explicit goodbye already cleaned up).
  void CloseSession(uint64_t session_id);

  /// Registers a submitted ticket under its service query id. Fails with
  /// ResourceExhausted when the session already holds `max_inflight`
  /// unfinished queries (the caller should cancel the ticket), and with
  /// NotFound when the session does not exist.
  Status RegisterQuery(uint64_t session_id,
                       std::shared_ptr<QueryTicket> ticket, int max_inflight);

  /// The ticket registered under `query_id`, or null. The ticket stays
  /// registered (cancel does not consume it).
  std::shared_ptr<QueryTicket> FindQuery(int64_t query_id);

  /// Like FindQuery, but only when `query_id` belongs to `session_id`
  /// (front ends let a session wait only on its own queries).
  std::shared_ptr<QueryTicket> FindSessionQuery(uint64_t session_id,
                                                int64_t query_id);

  /// Removes `query_id` from its session's in-flight set (the query
  /// finished and its result was consumed). Returns the ticket, or null if
  /// the id is unknown or belongs to another session.
  std::shared_ptr<QueryTicket> ReleaseQuery(uint64_t session_id,
                                            int64_t query_id);

  /// Registers a bare cancel token under `query_id` — for work a front end
  /// runs outside the ticket model (e.g. shard subplan execution, which
  /// streams rows as they are produced instead of waiting on a ticket).
  /// Registered tokens participate in cancel-by-id, CancelAll and
  /// session-close cancellation exactly like tickets, and count against
  /// the session's `max_inflight` bound.
  Status RegisterCancelable(uint64_t session_id, int64_t query_id,
                            std::shared_ptr<CancelToken> token,
                            int max_inflight);

  /// Removes a token registered with RegisterCancelable (the work
  /// finished). Unknown ids are ignored.
  void ReleaseCancelable(uint64_t session_id, int64_t query_id);

  /// Cancels the query registered under `query_id` from any session.
  /// Returns false when the id is unknown (already released or never
  /// registered).
  bool CancelQuery(int64_t query_id);

  /// Cancels every registered query (server shutdown: unblocks connection
  /// workers waiting on tickets).
  void CancelAll();

  int64_t open_sessions() const;
  int64_t inflight_queries() const;

 private:
  struct Session {
    /// query_id -> ticket; bounded by the front end's max_inflight.
    std::map<int64_t, std::shared_ptr<QueryTicket>> queries;
    /// query_id -> bare token (RegisterCancelable work); shares the
    /// max_inflight bound with `queries`.
    std::map<int64_t, std::shared_ptr<CancelToken>> cancelables;
  };

  mutable std::mutex mu_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, Session> sessions_;
  /// Process-wide table resolving cancel-by-id across sessions.
  std::unordered_map<int64_t, std::shared_ptr<QueryTicket>> by_query_id_;
  /// Same, for bare cancel tokens.
  std::unordered_map<int64_t, std::shared_ptr<CancelToken>> by_cancel_id_;
};

/// Bounded store of finished-query traces keyed by query id, FIFO-evicted:
/// the backing for a front end's `trace` endpoint. Plugs into
/// ServiceConfig::trace_sink; traces are rendered to JSON once at emit
/// time so Get() is a cheap string copy.
class TraceStore : public TraceSink {
 public:
  explicit TraceStore(int64_t capacity = 1024)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  void Emit(const QueryTrace& trace) override;

  /// The stored trace JSON for `query_id`, or nullopt when the query is
  /// unknown, unfinished, or already evicted.
  std::optional<std::string> Get(int64_t query_id) const;

  int64_t size() const;
  int64_t capacity() const { return capacity_; }

 private:
  const int64_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<int64_t, std::string> by_id_;
  std::deque<int64_t> order_;  ///< Emit order; front = oldest.
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_SESSION_H_
