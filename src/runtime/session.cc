#include "runtime/session.h"

#include <utility>
#include <vector>

namespace popdb {

// -------------------------------------------------------- SessionRegistry

uint64_t SessionRegistry::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_session_id_++;
  sessions_.emplace(id, Session{});
  return id;
}

void SessionRegistry::CloseSession(uint64_t session_id) {
  std::vector<std::shared_ptr<QueryTicket>> to_cancel;
  std::vector<std::shared_ptr<CancelToken>> tokens;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    for (auto& [query_id, ticket] : it->second.queries) {
      by_query_id_.erase(query_id);
      to_cancel.push_back(std::move(ticket));
    }
    for (auto& [query_id, token] : it->second.cancelables) {
      by_cancel_id_.erase(query_id);
      tokens.push_back(std::move(token));
    }
    sessions_.erase(it);
  }
  // Cancel outside the lock: Cancel() wakes service workers that may call
  // back into the registry.
  for (const auto& ticket : to_cancel) ticket->Cancel();
  for (const auto& token : tokens) token->RequestCancel();
}

Status SessionRegistry::RegisterQuery(uint64_t session_id,
                                      std::shared_ptr<QueryTicket> ticket,
                                      int max_inflight) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  if (max_inflight > 0 &&
      static_cast<int>(it->second.queries.size()) >= max_inflight) {
    return Status::ResourceExhausted(
        "session " + std::to_string(session_id) + " already has " +
        std::to_string(it->second.queries.size()) + " queries in flight");
  }
  const int64_t query_id = ticket->query_id();
  by_query_id_[query_id] = ticket;
  it->second.queries[query_id] = std::move(ticket);
  return Status::Ok();
}

Status SessionRegistry::RegisterCancelable(uint64_t session_id,
                                           int64_t query_id,
                                           std::shared_ptr<CancelToken> token,
                                           int max_inflight) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  const size_t inflight =
      it->second.queries.size() + it->second.cancelables.size();
  if (max_inflight > 0 && static_cast<int>(inflight) >= max_inflight) {
    return Status::ResourceExhausted(
        "session " + std::to_string(session_id) + " already has " +
        std::to_string(inflight) + " queries in flight");
  }
  by_cancel_id_[query_id] = token;
  it->second.cancelables[query_id] = std::move(token);
  return Status::Ok();
}

void SessionRegistry::ReleaseCancelable(uint64_t session_id,
                                        int64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  by_cancel_id_.erase(query_id);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  it->second.cancelables.erase(query_id);
}

std::shared_ptr<QueryTicket> SessionRegistry::FindQuery(int64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_query_id_.find(query_id);
  return it == by_query_id_.end() ? nullptr : it->second;
}

std::shared_ptr<QueryTicket> SessionRegistry::FindSessionQuery(
    uint64_t session_id, int64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = sessions_.find(session_id);
  if (session == sessions_.end()) return nullptr;
  auto entry = session->second.queries.find(query_id);
  return entry == session->second.queries.end() ? nullptr : entry->second;
}

std::shared_ptr<QueryTicket> SessionRegistry::ReleaseQuery(
    uint64_t session_id, int64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = sessions_.find(session_id);
  if (session == sessions_.end()) return nullptr;
  auto entry = session->second.queries.find(query_id);
  if (entry == session->second.queries.end()) return nullptr;
  std::shared_ptr<QueryTicket> ticket = std::move(entry->second);
  session->second.queries.erase(entry);
  by_query_id_.erase(query_id);
  return ticket;
}

bool SessionRegistry::CancelQuery(int64_t query_id) {
  std::shared_ptr<QueryTicket> ticket = FindQuery(query_id);
  if (ticket != nullptr) {
    ticket->Cancel();
    return true;
  }
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_cancel_id_.find(query_id);
    if (it != by_cancel_id_.end()) token = it->second;
  }
  if (token == nullptr) return false;
  token->RequestCancel();
  return true;
}

void SessionRegistry::CancelAll() {
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  std::vector<std::shared_ptr<CancelToken>> tokens;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tickets.reserve(by_query_id_.size());
    for (const auto& [id, ticket] : by_query_id_) tickets.push_back(ticket);
    tokens.reserve(by_cancel_id_.size());
    for (const auto& [id, token] : by_cancel_id_) tokens.push_back(token);
  }
  for (const auto& ticket : tickets) ticket->Cancel();
  for (const auto& token : tokens) token->RequestCancel();
}

int64_t SessionRegistry::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t SessionRegistry::inflight_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(by_query_id_.size() + by_cancel_id_.size());
}

// ------------------------------------------------------------- TraceStore

void TraceStore::Emit(const QueryTrace& trace) {
  std::string json = trace.ToJson();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = by_id_.emplace(trace.query_id, std::move(json));
  if (!inserted) {
    it->second = trace.ToJson();  // Re-emitted id: keep the newest trace.
    return;
  }
  order_.push_back(trace.query_id);
  while (static_cast<int64_t>(order_.size()) > capacity_) {
    by_id_.erase(order_.front());
    order_.pop_front();
  }
}

std::optional<std::string> TraceStore::Get(int64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(query_id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

int64_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(by_id_.size());
}

}  // namespace popdb
