#ifndef POPDB_RUNTIME_TRACE_H_
#define POPDB_RUNTIME_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/pop.h"

namespace popdb {

/// Per-attempt slice of a QueryTrace (one optimize+execute step of the
/// progressive loop).
struct TraceAttempt {
  std::string plan_text;
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  int64_t work = 0;
  int64_t rows_returned = 0;
  bool reoptimized = false;
  std::string reopt_flavor;  ///< Check flavor that fired (when reoptimized).
  /// EXPLAIN ANALYZE snapshot of the executed tree (estimated vs. actual
  /// rows, Q-error, timings per operator).
  PlanProfileNode profile;
  bool has_profile = false;
  /// Distributed attempts: per-shard timing/row/outcome breakdown.
  std::vector<ShardAttemptInfo> shards;
};

/// Structured record of one query's trip through the QueryService, emitted
/// to the configured TraceSink whenever a query finishes — successfully,
/// with an error, cancelled, or past its deadline.
struct QueryTrace {
  int64_t query_id = 0;
  std::string query_name;
  uint64_t session_id = 0;
  std::string priority;        ///< "high" or "normal".
  std::string outcome;         ///< "ok", "error", "cancelled", "deadline".
  std::string status_message;  ///< Status detail for non-ok outcomes.
  bool shared_feedback = false;

  // Latency breakdown (milliseconds).
  double queue_ms = 0.0;     ///< Admission queue wait.
  double optimize_ms = 0.0;  ///< Total across attempts.
  double execute_ms = 0.0;   ///< Total across attempts.
  double total_ms = 0.0;     ///< Submission to completion.

  int64_t work = 0;  ///< Deterministic work units across attempts.
  int64_t morsels = 0;        ///< Morsels dispatched by parallel fragments.
  int64_t parallel_work = 0;  ///< Work units done inside those fragments.
  int64_t result_rows = 0;
  int reopts = 0;
  int64_t check_events = 0;  ///< Checkpoint evaluations observed.
  int64_t checks_fired = 0;

  /// Plan-cache decision for the first optimization attempt
  /// (PlanCacheOutcomeName: "none" when no cache was consulted) and, on a
  /// hit, the age of the served entry.
  std::string plan_cache = "none";
  double plan_cache_age_ms = 0.0;

  std::vector<TraceAttempt> attempts;

  /// Compact single-line JSON rendering of the whole trace.
  std::string ToJson() const;
};

/// Copies the progressive executor's diagnostics into a trace (attempts,
/// work counters, check-event tallies, per-phase latencies).
void FillTraceFromStats(const ExecutionStats& stats, QueryTrace* trace);

/// Receives completed-query traces. Implementations must be thread safe:
/// worker threads emit concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const QueryTrace& trace) = 0;
};

/// Buffers traces in memory, in completion order (tests, examples).
class CollectingTraceSink : public TraceSink {
 public:
  void Emit(const QueryTrace& trace) override;

  /// Returns all buffered traces and clears the buffer.
  std::vector<QueryTrace> Drain();
  int64_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<QueryTrace> traces_;
};

/// Writes each trace as one JSON line (JSONL) to a stream. The stream is
/// not owned and must outlive the sink.
class StreamTraceSink : public TraceSink {
 public:
  explicit StreamTraceSink(std::ostream* out) : out_(out) {}
  void Emit(const QueryTrace& trace) override;

 private:
  std::mutex mu_;
  std::ostream* out_;
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_TRACE_H_
