#ifndef POPDB_RUNTIME_METRICS_REGISTRY_H_
#define POPDB_RUNTIME_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace popdb {

/// Monotonically increasing counter. Lock-free; handed out by
/// MetricsRegistry, which owns it (pointers stay valid for the registry's
/// lifetime).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// Instantaneous value (queue depth, in-flight queries). Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with atomic per-bucket counters: observations are
/// lock-free (one relaxed fetch_add into the owning bucket), quantiles are
/// estimated from the bucket boundaries. Replaces sampling rings: memory is
/// O(buckets) regardless of traffic, and no observation is ever dropped.
class Histogram {
 public:
  /// Geometric bucket upper bounds: start, start*factor, ... (`count`
  /// bounds). The registry appends an implicit +Inf bucket.
  static std::vector<double> LogBuckets(double start, double factor,
                                        int count);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1) —
  /// a conservative estimate, exact to bucket resolution. Returns NaN when
  /// no observations were recorded (an empty window is not "fast").
  double Quantile(double q) const;

  /// Finite bucket upper bounds (the +Inf bucket is implicit).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket `i`; `i == bounds().size()` is
  /// the +Inf bucket.
  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  ///< bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry with Prometheus text exposition. Registration
/// (GetCounter/GetGauge/GetHistogram) takes a mutex and is meant to happen
/// once at startup — callers cache the returned pointer and update it
/// lock-free on the hot path. Re-registering the same (name, labels)
/// returns the existing metric.
///
/// `labels` is a pre-rendered Prometheus label list without braces, e.g.
/// `flavor="LC"`; empty for an unlabelled metric. Metrics sharing a name
/// form one family (same type and help; rendered under one # HELP/# TYPE
/// header).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const std::string& labels = "");

  /// Prometheus text exposition format, families in registration order:
  ///   # HELP popdb_queries_submitted_total Queries submitted.
  ///   # TYPE popdb_queries_submitted_total counter
  ///   popdb_queries_submitted_total 42
  /// Histograms render cumulative `_bucket{le="..."}` series plus `_sum`
  /// and `_count`.
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    /// (labels, metric) in registration order; exactly one of the vectors
    /// is populated, matching `type`.
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges;
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
        histograms;
  };

  Family* FamilyFor(const std::string& name, const std::string& help,
                    Type type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_METRICS_REGISTRY_H_
