#include "runtime/morsel_dispatcher.h"

#include <utility>

namespace popdb {

MorselDispatcher::MorselDispatcher(int helper_threads, int queue_capacity)
    : queue_capacity_(queue_capacity < 1 ? 1 : queue_capacity) {
  if (helper_threads < 0) helper_threads = 0;
  helpers_.reserve(static_cast<size_t>(helper_threads));
  for (int i = 0; i < helper_threads; ++i) {
    helpers_.emplace_back([this] { HelperLoop(); });
  }
}

MorselDispatcher::MorselDispatcher(ExternalWorkersTag, int queue_capacity)
    : queue_capacity_(queue_capacity < 1 ? 1 : queue_capacity) {}

MorselDispatcher::~MorselDispatcher() { Shutdown(); }

void MorselDispatcher::set_notify(std::function<void()> notify) {
  std::lock_guard<std::mutex> lock(mu_);
  notify_ = std::move(notify);
}

bool MorselDispatcher::TrySubmit(std::shared_ptr<ParallelTask> task) {
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ ||
        static_cast<int>(queue_.size()) >= queue_capacity_) {
      ++rejected_;
      return false;
    }
    queue_.push_back(std::move(task));
    ++submitted_;
    notify = notify_;
  }
  cv_.notify_one();
  if (notify) notify();
  return true;
}

bool MorselDispatcher::TryRunOne() {
  std::shared_ptr<ParallelTask> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  if (task->RunIfUnclaimed()) {
    ran_.fetch_add(1, std::memory_order_relaxed);
  } else {
    stale_.fetch_add(1, std::memory_order_relaxed);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool MorselDispatcher::HasQueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !queue_.empty();
}

int64_t MorselDispatcher::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void MorselDispatcher::HelperLoop() {
  while (true) {
    std::shared_ptr<ParallelTask> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    if (task->RunIfUnclaimed()) {
      ran_.fetch_add(1, std::memory_order_relaxed);
    } else {
      stale_.fetch_add(1, std::memory_order_relaxed);
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void MorselDispatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Dropped tasks are safe: the owning TaskGroup steals them back and
    // runs them inline at join.
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& t : helpers_) {
    if (t.joinable()) t.join();
  }
}

MorselDispatcher::Stats MorselDispatcher::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
  }
  s.ran = ran_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace popdb
