#include "runtime/trace.h"

#include "common/json.h"

namespace popdb {

void FillTraceFromStats(const ExecutionStats& stats, QueryTrace* trace) {
  trace->work = stats.total_work;
  trace->morsels = stats.morsels_dispatched;
  trace->parallel_work = stats.parallel_work;
  trace->result_rows = stats.result_rows;
  trace->reopts = stats.reopts;
  trace->check_events = static_cast<int64_t>(stats.check_events.size());
  trace->plan_cache = PlanCacheOutcomeName(stats.plan_cache);
  trace->plan_cache_age_ms = stats.plan_cache_age_ms;
  trace->checks_fired = 0;
  for (const CheckEvent& ev : stats.check_events) {
    if (ev.fired) ++trace->checks_fired;
  }
  trace->optimize_ms = 0.0;
  trace->execute_ms = 0.0;
  trace->attempts.clear();
  trace->attempts.reserve(stats.attempts.size());
  for (const AttemptInfo& a : stats.attempts) {
    TraceAttempt ta;
    ta.plan_text = a.plan_text;
    ta.optimize_ms = a.optimize_ms;
    ta.execute_ms = a.execute_ms;
    ta.work = a.work;
    ta.rows_returned = a.rows_returned;
    ta.reoptimized = a.reoptimized;
    if (a.reoptimized) ta.reopt_flavor = CheckFlavorName(a.signal.flavor);
    ta.profile = a.profile;
    ta.has_profile = a.has_profile;
    ta.shards = a.shards;
    trace->optimize_ms += a.optimize_ms;
    trace->execute_ms += a.execute_ms;
    trace->attempts.push_back(std::move(ta));
  }
}

std::string QueryTrace::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("query_id").Int(query_id);
  w.Key("query").String(query_name);
  w.Key("session").Int(static_cast<int64_t>(session_id));
  w.Key("priority").String(priority);
  w.Key("outcome").String(outcome);
  if (!status_message.empty()) w.Key("status").String(status_message);
  w.Key("shared_feedback").Bool(shared_feedback);
  w.Key("latency_ms")
      .BeginObject()
      .Key("queue")
      .Double(queue_ms)
      .Key("optimize")
      .Double(optimize_ms)
      .Key("execute")
      .Double(execute_ms)
      .Key("total")
      .Double(total_ms)
      .EndObject();
  w.Key("work").Int(work);
  w.Key("morsels").Int(morsels);
  w.Key("parallel_work").Int(parallel_work);
  w.Key("result_rows").Int(result_rows);
  w.Key("reopts").Int(reopts);
  w.Key("check_events").Int(check_events);
  w.Key("checks_fired").Int(checks_fired);
  w.Key("plan_cache").String(plan_cache);
  if (plan_cache_age_ms > 0) {
    w.Key("plan_cache_age_ms").Double(plan_cache_age_ms);
  }
  w.Key("attempts").BeginArray();
  for (const TraceAttempt& a : attempts) {
    w.BeginObject();
    w.Key("plan").String(a.plan_text);
    w.Key("optimize_ms").Double(a.optimize_ms);
    w.Key("execute_ms").Double(a.execute_ms);
    w.Key("work").Int(a.work);
    w.Key("rows_returned").Int(a.rows_returned);
    w.Key("reoptimized").Bool(a.reoptimized);
    if (a.reoptimized) w.Key("reopt_flavor").String(a.reopt_flavor);
    if (a.has_profile) {
      w.Key("profile");
      ProfileToJson(a.profile, &w);
    }
    if (!a.shards.empty()) {
      w.Key("shards").BeginArray();
      for (const ShardAttemptInfo& s : a.shards) {
        w.BeginObject();
        w.Key("shard").Int(s.shard);
        w.Key("execute_ms").Double(s.execute_ms);
        w.Key("rows").Int(s.rows);
        w.Key("outcome").String(s.outcome);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void CollectingTraceSink::Emit(const QueryTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(trace);
}

std::vector<QueryTrace> CollectingTraceSink::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTrace> out = std::move(traces_);
  traces_.clear();
  return out;
}

int64_t CollectingTraceSink::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(traces_.size());
}

void StreamTraceSink::Emit(const QueryTrace& trace) {
  const std::string line = trace.ToJson();
  std::lock_guard<std::mutex> lock(mu_);
  (*out_) << line << '\n';
}

}  // namespace popdb
