#include "runtime/query_log.h"

#include <cstdio>

#include "common/json.h"
#include "exec/operator.h"

namespace popdb {

uint64_t PlanTextDigest(const std::string& plan_text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (const char c : plan_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string QueryLogEntry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("query_id").Int(query_id);
  w.Key("end_ms").Double(end_ms);
  w.Key("kind").String(kind);
  w.Key("query").String(query_name);
  if (!signature.empty()) w.Key("signature").String(signature);
  // Hex keeps the digest lossless (JSON integers are signed 64-bit).
  if (plan_digest != 0) {
    char hex[19];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(plan_digest));
    w.Key("plan_digest").String(hex);
  }
  w.Key("outcome").String(outcome);
  if (!status_message.empty()) w.Key("status").String(status_message);
  w.Key("plan_cache").String(plan_cache);
  w.Key("reopts").Int(reopts);
  w.Key("checks_fired").Int(checks_fired);
  if (checks_fired > 0) {
    w.Key("fired_by_flavor").BeginObject();
    for (int f = 0; f < 6; ++f) {
      if (flavor_fired[f] > 0) {
        w.Key(CheckFlavorName(static_cast<CheckFlavor>(f)))
            .Int(flavor_fired[f]);
      }
    }
    w.EndObject();
  }
  w.Key("queue_ms").Double(queue_ms);
  w.Key("optimize_ms").Double(optimize_ms);
  w.Key("execute_ms").Double(execute_ms);
  w.Key("total_ms").Double(total_ms);
  w.Key("result_rows").Int(result_rows);
  if (affected_rows >= 0) w.Key("affected_rows").Int(affected_rows);
  if (peak_qerror >= 0) w.Key("peak_qerror").Double(peak_qerror);
  w.Key("distributed").Bool(distributed);
  if (!shards.empty()) {
    w.Key("shards").BeginArray();
    for (const ShardAttemptInfo& s : shards) {
      w.BeginObject();
      w.Key("shard").Int(s.shard);
      w.Key("execute_ms").Double(s.execute_ms);
      w.Key("rows").Int(s.rows);
      w.Key("outcome").String(s.outcome);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str();
}

void QueryLog::Append(QueryLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  if (static_cast<int64_t>(entries_.size()) > capacity_) {
    entries_.pop_front();
  }
  ++total_;
}

std::vector<QueryLogEntry> QueryLog::Tail(int64_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t n = static_cast<int64_t>(entries_.size());
  const int64_t take = (limit <= 0 || limit > n) ? n : limit;
  return std::vector<QueryLogEntry>(entries_.end() - take, entries_.end());
}

std::string QueryLog::ToJsonArray(int64_t limit) const {
  const std::vector<QueryLogEntry> tail = Tail(limit);
  std::string out = "[";
  for (size_t i = 0; i < tail.size(); ++i) {
    if (i > 0) out += ',';
    out += tail[i].ToJson();
  }
  out += ']';
  return out;
}

int64_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t QueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace popdb
