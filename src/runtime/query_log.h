#ifndef POPDB_RUNTIME_QUERY_LOG_H_
#define POPDB_RUNTIME_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/pop.h"

namespace popdb {

/// One structured query-log record: the always-on, machine-readable
/// summary of a query's trip through the service. Unlike a QueryTrace it
/// is deliberately small (no plan text, no per-operator profile) so the
/// log can stay on for every query in production; the heavyweight trace is
/// still reachable by id through the `trace` wire request.
struct QueryLogEntry {
  int64_t query_id = 0;
  double end_ms = 0.0;  ///< Completion time, service monotonic clock (NowMs).
  /// "query" (analytical read), "write" (INSERT/UPDATE/DELETE through the
  /// write lane), or "subplan" (shard servers).
  std::string kind = "query";
  std::string query_name;
  /// Canonical plan-cache signature (QueryCacheSignature): rebinds of the
  /// same prepared statement share one signature, so the log groups by it.
  std::string signature;
  /// FNV-1a digest of the final executed plan's text — two entries with
  /// equal signatures but different digests mean the plan changed
  /// (re-optimization, epoch bump, stats refresh).
  uint64_t plan_digest = 0;
  std::string outcome;         ///< "ok", "error", "cancelled", "deadline".
  std::string status_message;  ///< Non-ok detail.
  std::string plan_cache = "none";  ///< "hit", "miss", "none", ...
  int reopts = 0;
  int64_t checks_fired = 0;
  /// CHECK firings by flavor, indexed by CheckFlavor (LC, LCEM, ECB, ECWC,
  /// ECDC, work-bound).
  int64_t flavor_fired[6] = {0, 0, 0, 0, 0, 0};
  double queue_ms = 0.0;
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  double total_ms = 0.0;
  int64_t result_rows = 0;
  /// Rows inserted/updated/deleted; -1 for reads (omitted from the JSON).
  int64_t affected_rows = -1;
  /// Largest per-operator cardinality Q-error across all attempt profiles;
  /// -1 when no completed, estimated operator was observed.
  double peak_qerror = -1.0;
  bool distributed = false;
  /// Distributed queries: per-shard breakdown of the last attempt.
  std::vector<ShardAttemptInfo> shards;

  /// Compact single-line JSON rendering (one JSONL record).
  std::string ToJson() const;
};

/// FNV-1a over a plan's text; 0 for the empty string is avoided by the
/// offset basis, so 0 reliably means "no plan recorded".
uint64_t PlanTextDigest(const std::string& plan_text);

/// Bounded, thread-safe, always-on structured query log: a FIFO ring of
/// the last `capacity` QueryLogEntry records. Writers append from service
/// worker threads; readers snapshot concurrently (TSan-hammered).
class QueryLog {
 public:
  explicit QueryLog(int64_t capacity = 512)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  void Append(QueryLogEntry entry);

  /// The most recent min(limit, size) entries, oldest first. limit <= 0
  /// means "all retained entries".
  std::vector<QueryLogEntry> Tail(int64_t limit = 0) const;

  /// Tail() rendered as one JSON array (wire `query_log` payload).
  std::string ToJsonArray(int64_t limit = 0) const;

  /// Entries currently retained / ever appended.
  int64_t size() const;
  int64_t total() const;
  int64_t capacity() const { return capacity_; }

 private:
  const int64_t capacity_;
  mutable std::mutex mu_;
  std::deque<QueryLogEntry> entries_;
  int64_t total_ = 0;
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_QUERY_LOG_H_
