#ifndef POPDB_RUNTIME_MORSEL_DISPATCHER_H_
#define POPDB_RUNTIME_MORSEL_DISPATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/parallel.h"

namespace popdb {

/// Task pool behind intra-query (morsel) parallelism — the concrete
/// TaskRunner the executors fan their fragment tasks through. Two modes:
///
///  - Owned threads: `MorselDispatcher(n)` spawns n helper threads that
///    drain the queue (standalone executors, tests, benchmarks).
///  - External workers: `MorselDispatcher(ExternalWorkersTag{})` holds no
///    threads of its own; the QueryService's workers drain the queue via
///    TryRunOne() whenever they are not running a query, so intra-query
///    parallelism borrows exactly the capacity the inter-query scheduler
///    is not using and degrades to serial execution under full load.
///
/// Submission is fire-and-forget and never blocks: TrySubmit rejects on
/// backpressure, and because every TaskGroup reclaims unstarted tasks at
/// join, a dropped or never-drained task costs parallelism only — no task
/// is ever lost and nothing deadlocks even when submitters are themselves
/// pool workers.
class MorselDispatcher : public TaskRunner {
 public:
  struct Stats {
    int64_t submitted = 0;  ///< Tasks accepted into the queue.
    int64_t rejected = 0;   ///< TrySubmit refusals (queue full / shutdown).
    int64_t ran = 0;        ///< Tasks this dispatcher claimed and ran.
    int64_t stale = 0;      ///< Dequeued after the owner stole them back.
  };

  struct ExternalWorkersTag {};

  /// Owned-thread mode: spawns `helper_threads` drainers.
  explicit MorselDispatcher(int helper_threads, int queue_capacity = 256);
  /// External-worker mode: no threads; drain through TryRunOne().
  explicit MorselDispatcher(ExternalWorkersTag, int queue_capacity = 256);

  ~MorselDispatcher() override;

  MorselDispatcher(const MorselDispatcher&) = delete;
  MorselDispatcher& operator=(const MorselDispatcher&) = delete;

  bool TrySubmit(std::shared_ptr<ParallelTask> task) override;

  /// Dequeues and runs one task if any is queued (external-worker mode).
  /// Returns true if a task was dequeued, whether or not it still needed
  /// running.
  bool TryRunOne();

  bool HasQueued() const;
  int64_t queued() const;

  /// Invoked (without internal locks held) after every successful enqueue
  /// so external workers can be woken. Set once, before first use.
  void set_notify(std::function<void()> notify);

  /// Stops accepting tasks and joins owned helper threads. Queued tasks
  /// are dropped — their owning TaskGroups run them inline. Idempotent.
  void Shutdown();

  Stats stats() const;
  /// Helpers currently inside a task (thread-occupancy gauge source).
  int active() const { return active_.load(std::memory_order_relaxed); }

 private:
  void HelperLoop();

  const int queue_capacity_;
  std::function<void()> notify_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ParallelTask>> queue_;
  bool shutdown_ = false;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  std::vector<std::thread> helpers_;

  std::atomic<int64_t> ran_{0};
  std::atomic<int64_t> stale_{0};
  std::atomic<int> active_{0};
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_MORSEL_DISPATCHER_H_
