#include "runtime/metrics.h"

namespace popdb {

ServiceMetrics::ServiceMetrics() {
  submitted_ = registry_.GetCounter("popdb_queries_submitted_total",
                                    "Queries submitted to the service.");
  admitted_ = registry_.GetCounter("popdb_queries_admitted_total",
                                   "Queries accepted into the queue.");
  rejected_ = registry_.GetCounter(
      "popdb_queries_rejected_total",
      "Queries bounced by admission control (queue full or shut down).");
  completed_ = registry_.GetCounter("popdb_queries_completed_total",
                                    "Queries finished successfully.");
  failed_ = registry_.GetCounter("popdb_queries_failed_total",
                                 "Queries finished with an error.");
  cancelled_ = registry_.GetCounter("popdb_queries_cancelled_total",
                                    "Queries cancelled by the client.");
  deadline_expired_ =
      registry_.GetCounter("popdb_queries_deadline_expired_total",
                           "Queries that exceeded their deadline.");
  reoptimized_queries_ = registry_.GetCounter(
      "popdb_queries_reoptimized_total",
      "Queries that re-optimized at least once.");
  reopt_attempts_ = registry_.GetCounter(
      "popdb_reopt_attempts_total", "Re-optimization attempts served.");
  checks_fired_ = registry_.GetCounter("popdb_checks_fired_total",
                                       "CHECK violations across queries.");
  in_flight_ = registry_.GetGauge("popdb_queries_in_flight",
                                  "Admitted queries not yet finished.");
  // 0.25ms .. ~8.2s in 16 doubling buckets (plus +Inf).
  latency_ = registry_.GetHistogram(
      "popdb_query_latency_ms",
      "End-to-end (submit to finish) query latency in milliseconds.",
      Histogram::LogBuckets(0.25, 2.0, 16));
}

ServiceStatsSnapshot ServiceMetrics::Snapshot() const {
  ServiceStatsSnapshot s;
  s.submitted = submitted_->value();
  s.admitted = admitted_->value();
  s.rejected = rejected_->value();
  s.completed = completed_->value();
  s.failed = failed_->value();
  s.cancelled = cancelled_->value();
  s.deadline_expired = deadline_expired_->value();
  s.reoptimized_queries = reoptimized_queries_->value();
  s.reopt_attempts = reopt_attempts_->value();
  s.checks_fired = checks_fired_->value();
  s.queries_in_flight = in_flight_->value();
  s.p50_latency_ms = latency_->Quantile(0.50);
  s.p95_latency_ms = latency_->Quantile(0.95);
  return s;
}

}  // namespace popdb
