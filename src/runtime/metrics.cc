#include "runtime/metrics.h"

#include <algorithm>

namespace popdb {

void ServiceMetrics::RecordLatency(double ms) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
  } else {
    latencies_[latency_next_] = ms;
    latency_wrapped_ = true;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

namespace {
double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}
}  // namespace

ServiceStatsSnapshot ServiceMetrics::Snapshot() const {
  ServiceStatsSnapshot s;
  s.submitted = submitted_.load();
  s.admitted = admitted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.failed = failed_.load();
  s.cancelled = cancelled_.load();
  s.deadline_expired = deadline_expired_.load();
  s.reoptimized_queries = reoptimized_queries_.load();
  s.reopt_attempts = reopt_attempts_.load();
  s.checks_fired = checks_fired_.load();
  s.queries_in_flight = in_flight_.load();
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    samples = latencies_;
  }
  s.p50_latency_ms = Percentile(&samples, 0.50);
  s.p95_latency_ms = Percentile(&samples, 0.95);
  return s;
}

}  // namespace popdb
