#include "runtime/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace popdb {

// ------------------------------------------------------------- Histogram

std::vector<double> Histogram::LogBuckets(double start, double factor,
                                          int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS add (atomic<double>::fetch_add is C++20 but not universally
  // lock-free; the CAS loop is portable and uncontended in practice).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Quantile(double q) const {
  const int64_t total = count();
  if (total <= 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(
                               q * static_cast<double>(total))));
  int64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // The +Inf bucket has no finite upper bound; report the largest
      // finite boundary rather than infinity.
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry::Family* MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    Type type) {
  for (const auto& family : families_) {
    if (family->name == name) {
      // Same name, same family: the first registration fixes type/help.
      return family->type == type ? family.get() : nullptr;
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->type = type;
  families_.push_back(std::move(family));
  return families_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyFor(name, help, Type::kCounter);
  if (family == nullptr) return nullptr;
  for (const auto& [l, metric] : family->counters) {
    if (l == labels) return metric.get();
  }
  family->counters.emplace_back(
      labels, std::unique_ptr<Counter>(new Counter()));
  return family->counters.back().second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyFor(name, help, Type::kGauge);
  if (family == nullptr) return nullptr;
  for (const auto& [l, metric] : family->gauges) {
    if (l == labels) return metric.get();
  }
  family->gauges.emplace_back(labels, std::unique_ptr<Gauge>(new Gauge()));
  return family->gauges.back().second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyFor(name, help, Type::kHistogram);
  if (family == nullptr) return nullptr;
  for (const auto& [l, metric] : family->histograms) {
    if (l == labels) return metric.get();
  }
  family->histograms.emplace_back(
      labels, std::unique_ptr<Histogram>(new Histogram(std::move(bounds))));
  return family->histograms.back().second.get();
}

namespace {

std::string WithLabels(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// `le` merged into any existing labels, e.g. {flavor="LC",le="4"}.
std::string BucketSeries(const std::string& name, const std::string& labels,
                         const std::string& le) {
  std::string all = labels.empty() ? "" : labels + ",";
  all += "le=\"" + le + "\"";
  return name + "_bucket{" + all + "}";
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& family : families_) {
    out += "# HELP " + family->name + " " + family->help + "\n";
    switch (family->type) {
      case Type::kCounter:
        out += "# TYPE " + family->name + " counter\n";
        for (const auto& [labels, metric] : family->counters) {
          out += WithLabels(family->name, labels) +
                 StrFormat(" %lld\n",
                           static_cast<long long>(metric->value()));
        }
        break;
      case Type::kGauge:
        out += "# TYPE " + family->name + " gauge\n";
        for (const auto& [labels, metric] : family->gauges) {
          out += WithLabels(family->name, labels) +
                 StrFormat(" %lld\n",
                           static_cast<long long>(metric->value()));
        }
        break;
      case Type::kHistogram:
        out += "# TYPE " + family->name + " histogram\n";
        for (const auto& [labels, metric] : family->histograms) {
          int64_t cumulative = 0;
          const std::vector<double>& bounds = metric->bounds();
          for (size_t i = 0; i < bounds.size(); ++i) {
            cumulative += metric->bucket_count(i);
            out += BucketSeries(family->name, labels,
                                StrFormat("%g", bounds[i])) +
                   StrFormat(" %lld\n", static_cast<long long>(cumulative));
          }
          cumulative += metric->bucket_count(bounds.size());
          out += BucketSeries(family->name, labels, "+Inf") +
                 StrFormat(" %lld\n", static_cast<long long>(cumulative));
          out += WithLabels(family->name + "_sum", labels) +
                 StrFormat(" %g\n", metric->sum());
          out += WithLabels(family->name + "_count", labels) +
                 StrFormat(" %lld\n", static_cast<long long>(cumulative));
        }
        break;
    }
  }
  return out;
}

}  // namespace popdb
