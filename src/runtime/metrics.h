#ifndef POPDB_RUNTIME_METRICS_H_
#define POPDB_RUNTIME_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace popdb {

/// Point-in-time view of a QueryService's aggregate counters. All counters
/// are monotonically increasing except queries_in_flight.
struct ServiceStatsSnapshot {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;  ///< Bounced by admission control (queue full).
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;         ///< Explicit client cancellation.
  int64_t deadline_expired = 0;  ///< Deadline-triggered cancellation.
  int64_t reoptimized_queries = 0;  ///< Queries with >= 1 re-optimization.
  int64_t reopt_attempts = 0;       ///< Total re-optimizations served.
  int64_t checks_fired = 0;
  int64_t queries_in_flight = 0;  ///< Admitted, not yet finished.
  double p50_latency_ms = 0.0;    ///< Over recent end-to-end latencies.
  double p95_latency_ms = 0.0;
};

/// Thread-safe counter and latency aggregation for the QueryService.
/// Counters are lock-free atomics; latencies go into a bounded ring of
/// recent samples (percentiles computed on demand from the ring).
class ServiceMetrics {
 public:
  void OnSubmitted() { ++submitted_; }
  void OnAdmitted() {
    ++admitted_;
    ++in_flight_;
  }
  void OnRejected() { ++rejected_; }
  void OnCompleted() { Finish(&completed_); }
  void OnFailed() { Finish(&failed_); }
  void OnCancelled() { Finish(&cancelled_); }
  void OnDeadlineExpired() { Finish(&deadline_expired_); }

  void OnReopts(int reopts, int64_t fired) {
    if (reopts > 0) {
      ++reoptimized_queries_;
      reopt_attempts_ += reopts;
    }
    checks_fired_ += fired;
  }

  /// Records one end-to-end (submit → finish) latency sample.
  void RecordLatency(double ms);

  ServiceStatsSnapshot Snapshot() const;

 private:
  void Finish(std::atomic<int64_t>* counter) {
    ++*counter;
    --in_flight_;
  }

  static constexpr size_t kLatencyWindow = 4096;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> deadline_expired_{0};
  std::atomic<int64_t> reoptimized_queries_{0};
  std::atomic<int64_t> reopt_attempts_{0};
  std::atomic<int64_t> checks_fired_{0};
  std::atomic<int64_t> in_flight_{0};

  mutable std::mutex latency_mu_;
  std::vector<double> latencies_;  ///< Ring buffer of recent samples.
  size_t latency_next_ = 0;
  bool latency_wrapped_ = false;
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_METRICS_H_
