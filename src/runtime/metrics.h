#ifndef POPDB_RUNTIME_METRICS_H_
#define POPDB_RUNTIME_METRICS_H_

#include <cstdint>

#include "runtime/metrics_registry.h"

namespace popdb {

/// Point-in-time view of a QueryService's aggregate counters. All counters
/// are monotonically increasing except queries_in_flight. The latency
/// percentiles are estimated from a log-bucketed histogram; they are NaN
/// until the first sample is recorded (an empty window is not "0 ms").
struct ServiceStatsSnapshot {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;  ///< Bounced by admission control (queue full).
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;         ///< Explicit client cancellation.
  int64_t deadline_expired = 0;  ///< Deadline-triggered cancellation.
  int64_t reoptimized_queries = 0;  ///< Queries with >= 1 re-optimization.
  int64_t reopt_attempts = 0;       ///< Total re-optimizations served.
  int64_t checks_fired = 0;
  int64_t queries_in_flight = 0;  ///< Admitted, not yet finished.
  double p50_latency_ms = 0.0;    ///< NaN when no query finished yet.
  double p95_latency_ms = 0.0;    ///< NaN when no query finished yet.
};

/// The QueryService's counters, backed by a MetricsRegistry so the same
/// values serve the programmatic Snapshot() API and the Prometheus text
/// exposition. All update paths are lock-free (relaxed atomics); latencies
/// go into a log-bucketed histogram instead of a bounded sample ring, so
/// no observation is ever dropped.
class ServiceMetrics {
 public:
  ServiceMetrics();
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  void OnSubmitted() { submitted_->Increment(); }
  void OnAdmitted() {
    admitted_->Increment();
    in_flight_->Increment();
  }
  void OnRejected() { rejected_->Increment(); }
  void OnCompleted() { Finish(completed_); }
  void OnFailed() { Finish(failed_); }
  void OnCancelled() { Finish(cancelled_); }
  void OnDeadlineExpired() { Finish(deadline_expired_); }

  void OnReopts(int reopts, int64_t fired) {
    if (reopts > 0) {
      reoptimized_queries_->Increment();
      reopt_attempts_->Increment(reopts);
    }
    if (fired > 0) checks_fired_->Increment(fired);
  }

  /// Records one end-to-end (submit -> finish) latency sample.
  void RecordLatency(double ms) { latency_->Observe(ms); }

  ServiceStatsSnapshot Snapshot() const;

  /// The underlying registry — engine-level metrics (check flavors,
  /// Q-error distribution, queue depth) register here so one Prometheus
  /// render covers the whole service.
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

 private:
  void Finish(Counter* counter) {
    counter->Increment();
    in_flight_->Decrement();
  }

  MetricsRegistry registry_;
  Counter* submitted_;
  Counter* admitted_;
  Counter* rejected_;
  Counter* completed_;
  Counter* failed_;
  Counter* cancelled_;
  Counter* deadline_expired_;
  Counter* reoptimized_queries_;
  Counter* reopt_attempts_;
  Counter* checks_fired_;
  Gauge* in_flight_;
  Histogram* latency_;
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_METRICS_H_
