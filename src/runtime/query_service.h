#ifndef POPDB_RUNTIME_QUERY_SERVICE_H_
#define POPDB_RUNTIME_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/pop.h"
#include "runtime/metrics.h"
#include "runtime/morsel_dispatcher.h"
#include "runtime/query_log.h"
#include "runtime/trace.h"
#include "storage/catalog.h"
#include "txn/write.h"

namespace popdb {

namespace txn {
class WriteManager;
}  // namespace txn

/// Admission lane. High-priority submissions are dispatched before any
/// queued normal-priority work; within a lane, dispatch is FIFO.
enum class QueryPriority { kNormal = 0, kHigh = 1 };

/// Pluggable distributed execution back end (implemented by
/// dist::Coordinator; declared here so runtime does not depend on dist).
/// When attached via ServiceConfig::dist_backend, workers route every
/// query the back end claims (CanExecute) through Execute instead of the
/// local ProgressiveExecutor; everything else (admission, deadlines,
/// cancellation, tracing, metrics) stays with the service.
///
/// Implementations must be thread safe: multiple workers may call
/// Execute concurrently.
/// Cross-layer identity of one distributed query execution, threaded from
/// the service into the back end so coordinator- and shard-side trace
/// spans can be stitched into one cluster timeline.
struct DistQueryInfo {
  int64_t query_id = 0;     ///< Service-assigned id; 0 = untracked.
  std::string trace_token;  ///< Cluster-unique trace token ("q<id>" or
                            ///< client-chosen); empty = untraced.
};

class DistributedBackend {
 public:
  virtual ~DistributedBackend() = default;

  /// True when the back end can run `query` exhaustively (e.g. the query's
  /// partitioned tables are co-partition joined). False routes the query
  /// to local execution.
  virtual bool CanExecute(const QuerySpec& query) const = 0;

  /// Runs `query` across the cluster. `cancel` (never null) propagates
  /// client cancellation and deadlines; `feedback` (may be null) is the
  /// session's cross-query feedback store to seed from and absorb into;
  /// `stats` (never null) receives attempt/timing/re-opt diagnostics.
  /// `info` carries the query id and trace token for cluster-wide trace
  /// stitching (propagated to shards in the `subplan` wire request).
  virtual Result<std::vector<Row>> Execute(const QuerySpec& query,
                                           CancelToken* cancel,
                                           QueryFeedbackStore* feedback,
                                           ExecutionStats* stats,
                                           const DistQueryInfo& info = {}) = 0;
};

/// Configuration of a QueryService instance.
struct ServiceConfig {
  /// Worker threads executing queries (each runs one query at a time).
  int num_workers = 4;

  /// Bound on queued (admitted, not yet running) queries across both
  /// lanes; Submit rejects with ResourceExhausted when the bound is hit.
  int queue_capacity = 64;

  /// Progressive (POP) execution; false = classic optimize-once execution.
  bool use_pop = true;

  /// One process-wide feedback store shared by all sessions: cardinalities
  /// learned by any query's re-optimization seed the planning of
  /// concurrent and subsequent queries (LEO-style, across threads). When
  /// false, feedback is isolated per SubmitOptions::session_id.
  bool share_feedback = true;

  /// Deadline applied to queries that don't specify one; 0 = none. The
  /// clock starts at submission, so queue wait counts against it.
  double default_deadline_ms = 0.0;

  /// Simulated per-query storage/network stall in ms (the worker sleeps
  /// this long before executing). Models the I/O wait of a disk-based
  /// engine so scheduler experiments (bench_runtime_throughput) can
  /// measure dispatch scaling independent of core count; 0 = off.
  double io_stall_ms = 0.0;

  /// Intra-query (morsel) degree of parallelism. When > 1, parallelizable
  /// plan fragments fan out over the service's own worker pool: idle
  /// workers double as morsel helpers, so intra-query parallelism uses
  /// exactly the capacity inter-query scheduling leaves free and degrades
  /// to serial execution under full load. 1 = serial (default).
  int intra_query_dop = 1;

  /// Rows per morsel when intra_query_dop > 1.
  int64_t morsel_rows = 2048;

  /// Tables below this size are never morsel-parallelized (fan-out
  /// overhead would dominate).
  int64_t min_parallel_rows = 4096;

  /// Rows per execution batch (ParallelPolicy::batch_rows): > 1 runs plans
  /// through the vectorized engine, <= 1 forces row-at-a-time execution.
  /// Results and re-optimization behavior are bit-identical either way.
  int64_t exec_batch_rows = 1024;

  /// Shared plan-cache capacity in entries; <= 0 disables plan caching.
  /// The cache is keyed by canonical query signature and gated by the
  /// feedback epoch/digest, so repeat submissions (prepared statements
  /// with different bindings included) skip DP enumeration while hits
  /// remain provably identical to fresh optimizations. Only effective
  /// when use_pop is true (static runs never consult the cache).
  int64_t plan_cache_entries = 256;

  /// Relaxed reuse: serve entries whose feedback digest moved as long as
  /// every current cardinality stays inside the cached plan's validity
  /// ranges (PlanCacheConfig::validity_hits). Off by default.
  bool plan_cache_validity_hits = false;

  /// Incremental re-optimization (PopConfig::incremental_reopt surfaced as
  /// a service knob): keep the DP memo alive across a query's
  /// re-optimization attempts and warm-start it from cached skeletons on
  /// plan-cache near misses. Plans are bit-identical either way; false
  /// forces from-scratch DP per attempt (both this and pop.incremental_reopt
  /// must be true for the incremental path).
  bool incremental_reopt = true;

  /// Capacity of the always-on structured query log (the last N finished
  /// queries as compact JSONL records: signature, plan digest, cache
  /// outcome, re-opt count, CHECK firings by flavor, per-shard timings,
  /// peak Q-error, final status). <= 0 disables the log.
  int64_t query_log_entries = 512;

  OptimizerConfig optimizer;
  PopConfig pop;

  /// Receives a QueryTrace for every finished query. Not owned; may be
  /// null. Must be thread safe (workers emit concurrently).
  TraceSink* trace_sink = nullptr;

  /// Distributed scatter-gather back end (coordinator mode). Not owned;
  /// may be null (all queries execute locally). Queries the back end does
  /// not claim fall back to local execution against `catalog`.
  DistributedBackend* dist_backend = nullptr;
};

/// Per-submission options.
struct SubmitOptions {
  QueryPriority priority = QueryPriority::kNormal;

  /// Deadline in ms from submission; -1 = service default, 0 = none.
  double deadline_ms = -1.0;

  /// Feedback scope when ServiceConfig::share_feedback is false. Ignored
  /// (all sessions share) when share_feedback is true.
  uint64_t session_id = 0;

  /// Client-chosen trace token carried through the execution (root span
  /// label, shard subplan requests). Empty = service assigns "q<id>".
  std::string trace_token;
};

/// Final outcome of a submitted query.
struct QueryResult {
  Status status;
  std::vector<Row> rows;
  QueryTrace trace;
};

/// Final outcome of a DML statement routed through ExecuteWrite.
struct WriteQueryResult {
  Status status;
  int64_t query_id = 0;
  int64_t affected_rows = 0;
  /// Catalog stats version after the statement (readers of this value can
  /// correlate plan-cache invalidations with the write that caused them).
  int64_t stats_version = 0;
  /// True when this statement's churn crossed the fold threshold and the
  /// table's statistics were refreshed (bumping the stats version).
  bool stats_folded = false;
  double total_ms = 0.0;
};

/// Client-side handle for one submission. Thread safe; obtained from
/// QueryService::Submit as a shared_ptr (the service keeps a reference
/// until the query finishes, so the client may drop the ticket early).
class QueryTicket {
 public:
  /// Requests cooperative cancellation: a still-queued query finishes as
  /// cancelled without executing; a running query unwinds at its next
  /// cancellation poll inside the operator tree.
  void Cancel() { cancel_.RequestCancel(); }

  /// Blocks until the query finished. The reference stays valid for the
  /// ticket's lifetime.
  const QueryResult& Wait();

  /// Waits up to `timeout_ms`; returns false on timeout.
  bool WaitForMs(double timeout_ms);

  bool done() const;

  int64_t query_id() const { return query_id_; }

 private:
  friend class QueryService;

  explicit QueryTicket(QuerySpec query) : query_(std::move(query)) {}

  // Submission metadata, immutable after Submit().
  QuerySpec query_;
  QueryPriority priority_ = QueryPriority::kNormal;
  uint64_t session_id_ = 0;
  int64_t query_id_ = 0;
  double submit_ms_ = 0.0;
  std::string trace_token_;

  CancelToken cancel_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  QueryResult result_;
};

/// Concurrent query-service front end over ProgressiveExecutor: a fixed
/// worker pool pulls submissions from a bounded two-lane admission queue
/// and executes them progressively, sharing re-optimization feedback
/// across the whole workload. Per-query deadlines and client cancellation
/// unwind running operator trees cooperatively.
///
/// Example:
///   QueryService service(catalog, ServiceConfig{});
///   auto ticket = service.Submit(query);
///   if (!ticket.ok()) ...           // e.g. admission queue full
///   const QueryResult& r = ticket.value()->Wait();
///   r.trace.ToJson();               // structured per-query trace
class QueryService {
 public:
  /// `catalog` must outlive the service.
  QueryService(const Catalog& catalog, ServiceConfig config);

  /// Drains queued queries, then joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits a query for execution. Fails with ResourceExhausted when the
  /// admission queue is full (the query is not enqueued and counts as
  /// rejected) and with InvalidArgument after Shutdown.
  Result<std::shared_ptr<QueryTicket>> Submit(QuerySpec query,
                                              SubmitOptions opts = {});

  /// Convenience: Submit + Wait. Admission failures surface as the
  /// result's status.
  QueryResult ExecuteSync(QuerySpec query, SubmitOptions opts = {});

  /// Stops admission and joins the workers. drain=true (default) finishes
  /// all queued queries first; drain=false completes queued-but-not-started
  /// queries as cancelled. Idempotent.
  void Shutdown(bool drain = true);

  /// Aggregate counters and latency percentiles.
  ServiceStatsSnapshot Stats() const { return metrics_.Snapshot(); }

  /// Prometheus text exposition of every service and engine metric:
  /// service counters, the latency histogram, checks fired by flavor, the
  /// per-operator Q-error distribution, admission queue depth, and
  /// feedback-store effectiveness. Ready to serve from a /metrics
  /// endpoint.
  std::string MetricsText();

  /// The registry backing MetricsText() (for registering extra metrics or
  /// inspecting individual families in tests).
  MetricsRegistry& metrics_registry() { return metrics_.registry(); }

  /// Process-wide check-firing history: canonical subplan signature of the
  /// guarded edge -> number of times a checkpoint on it fired. Shared
  /// diagnostic memory of where the optimizer's estimates break.
  std::map<std::string, int64_t> CheckHistory() const;

  const ServiceConfig& config() const { return config_; }

  /// The catalog queries execute against (front ends bind SQL text against
  /// it before submitting).
  const Catalog& catalog() const { return catalog_; }

  /// The shared plan cache, or null when plan_cache_entries <= 0 (tests:
  /// inspect hit/miss counters, force invalidations).
  PlanCache* plan_cache() { return plan_cache_.get(); }

  /// The process-wide shared feedback store (tests: bump the external
  /// epoch to model a stats refresh, inspect learned cardinalities).
  QueryFeedbackStore& shared_feedback() { return shared_feedback_; }

  /// Draws a fresh id from the service-wide query-id sequence. Used by
  /// front ends for work they track in the session registry without a
  /// ticket (e.g. shard subplan executions), so cancel-by-id has one id
  /// space.
  int64_t AllocateQueryId() { return next_query_id_.fetch_add(1); }

  /// The structured query log, or null when query_log_entries <= 0. Front
  /// ends serve it over the `query_log` wire request; shard servers also
  /// append their subplan executions to it.
  QueryLog* query_log() { return query_log_.get(); }

  /// Attaches the write path. `writes` (not owned, may be null to detach)
  /// must outlive the service; the owner also owns the *mutable* catalog
  /// behind `catalog()`. Until attached, ExecuteWrite rejects every
  /// statement (read-only service).
  void AttachWriteManager(txn::WriteManager* writes) {
    write_manager_ = writes;
  }

  /// Applies one bound DML statement synchronously on the caller's thread.
  /// Writes do not pass the admission queue: WriteManager serializes per
  /// table (its write lane), so the statement blocks only on same-table
  /// writers while analytical queries proceed on snapshots. Records
  /// metrics (popdb_writes_total{op}, popdb_stats_version_bumps_total) and
  /// a kind="write" query-log entry.
  WriteQueryResult ExecuteWrite(const txn::WriteStatement& stmt);

 private:
  void WorkerLoop();
  void RunOne(const std::shared_ptr<QueryTicket>& ticket);
  /// `stats` (may be null for never-executed queries) provides the CHECK
  /// flavor breakdown for the query-log entry.
  void FinishTicket(const std::shared_ptr<QueryTicket>& ticket,
                    QueryResult result, QueryTrace trace,
                    const ExecutionStats* stats = nullptr);
  /// Feeds every annotated operator's Q-error into qerror_hist_.
  void ObserveQErrors(const PlanProfileNode& node);
  /// Store for a session (the shared store, or the per-session one).
  QueryFeedbackStore* FeedbackFor(uint64_t session_id);

  const Catalog& catalog_;
  ServiceConfig config_;
  ServiceMetrics metrics_;

  // Engine-level metrics, registered in metrics_.registry() (cached raw
  // pointers; the registry owns them).
  Counter* flavor_fired_[6] = {};       ///< Indexed by CheckFlavor.
  Histogram* qerror_hist_ = nullptr;    ///< Per-operator Q-error.
  Gauge* queue_depth_ = nullptr;        ///< Queued, not yet dispatched.
  Gauge* feedback_lookups_ = nullptr;   ///< Shared-store Seed() calls.
  Gauge* feedback_hits_ = nullptr;      ///< ... that found cardinalities.
  Gauge* feedback_seeded_ = nullptr;    ///< Cardinalities handed out.

  // Incremental re-optimization counters (registered when use_pop).
  Counter* reopt_incremental_hits_ = nullptr;  ///< Memo entries reused.
  Counter* reopt_incremental_invalidated_ = nullptr;  ///< Entries dropped.

  // Morsel-parallelism metrics (registered only when intra_query_dop > 1).
  Counter* morsels_total_ = nullptr;        ///< Morsels executed.
  Counter* parallel_work_total_ = nullptr;  ///< Work units done in parallel
                                            ///< fragments.
  Counter* work_total_ = nullptr;           ///< All work units (parallel
                                            ///< fraction denominator).
  Histogram* parallel_fraction_ = nullptr;  ///< Per-query parallel share.
  Gauge* morsel_submitted_ = nullptr;       ///< Dispatcher: accepted tasks.
  Gauge* morsel_rejected_ = nullptr;        ///< Dispatcher: backpressure.
  Gauge* morsel_ran_ = nullptr;             ///< Tasks run by helpers.
  Gauge* morsel_stale_ = nullptr;           ///< Stolen back before helper.
  Gauge* morsel_active_ = nullptr;          ///< Workers inside a morsel.

  // Write-path metrics (always registered; the write path may attach
  // after construction).
  Counter* writes_total_[3] = {};  ///< Indexed by txn::WriteOp.
  Counter* stats_version_bumps_ = nullptr;  ///< Write-triggered stats folds.

  // Plan-cache metrics (registered only when the cache is enabled).
  // Counters are mirrored from PlanCache::stats() at scrape time.
  Gauge* plan_cache_stale_stats_evictions_ = nullptr;  ///< Evicted because
                                                       ///< the stats
                                                       ///< version moved.
  Gauge* plan_cache_lookups_ = nullptr;
  Gauge* plan_cache_hits_ = nullptr;         ///< Exact + validity hits.
  Gauge* plan_cache_misses_ = nullptr;       ///< All miss kinds.
  Gauge* plan_cache_invalidations_ = nullptr;  ///< Entries evicted as
                                               ///< stale (epoch/validity).
  Gauge* plan_cache_installs_ = nullptr;
  Gauge* plan_cache_size_ = nullptr;         ///< Entries resident now.
  Gauge* plan_cache_near_misses_ = nullptr;  ///< Signature hit, digest
                                             ///< moved (warm-start source).
  Histogram* plan_cache_hit_age_ = nullptr;  ///< Age of served entries.

  std::mutex mu_;
  std::condition_variable cv_;
  /// Index 0 = normal lane, 1 = high lane; each FIFO.
  std::deque<std::shared_ptr<QueryTicket>> lanes_[2];
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  /// Shared fan-out point for intra-query parallelism; null when
  /// intra_query_dop <= 1. External-worker mode: WorkerLoop drains it.
  std::unique_ptr<MorselDispatcher> morsel_pool_;

  /// Shared across all workers and sessions; null when disabled. Each
  /// executor gates lookups on the external epoch of *its* feedback store
  /// (the shared store, or the per-session one when share_feedback is
  /// off); the feedback digest keeps cross-session reuse sound either
  /// way, since a hit requires the exact optimizer inputs that installed
  /// the entry.
  std::unique_ptr<PlanCache> plan_cache_;

  /// Always-on structured query log; null when disabled.
  std::unique_ptr<QueryLog> query_log_;

  /// Write path; null until AttachWriteManager (read-only service).
  txn::WriteManager* write_manager_ = nullptr;

  QueryFeedbackStore shared_feedback_;
  std::mutex sessions_mu_;
  std::map<uint64_t, std::unique_ptr<QueryFeedbackStore>> session_feedback_;

  mutable std::mutex history_mu_;
  std::map<std::string, int64_t> check_history_;

  std::atomic<int64_t> next_query_id_{1};
};

}  // namespace popdb

#endif  // POPDB_RUNTIME_QUERY_SERVICE_H_
