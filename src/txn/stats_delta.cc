#include "txn/stats_delta.h"

#include <algorithm>
#include <cmath>

namespace popdb {
namespace txn {

StatsDelta::StatsDelta(int num_columns, StatsDeltaConfig config)
    : config_(config), columns_(static_cast<size_t>(num_columns)) {}

void StatsDelta::RecordAdded(const Row& row) {
  for (size_t c = 0; c < columns_.size() && c < row.size(); ++c) {
    ColumnDelta& cd = columns_[c];
    const Value& v = row[c];
    if (v.is_null()) {
      ++cd.nulls_added;
      continue;
    }
    if (!cd.min || v < *cd.min) cd.min = v;
    if (!cd.max || v > *cd.max) cd.max = v;
    if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
      cd.added.push_back(v.AsNumeric());
    }
    if (!cd.ndv_saturated) {
      cd.ndv_sketch.insert(v.Hash());
      if (cd.ndv_sketch.size() >= config_.ndv_sketch_cap) {
        cd.ndv_saturated = true;
      }
    }
  }
}

void StatsDelta::RecordRemoved(const Row& row) {
  for (size_t c = 0; c < columns_.size() && c < row.size(); ++c) {
    ColumnDelta& cd = columns_[c];
    const Value& v = row[c];
    if (v.is_null()) {
      ++cd.nulls_removed;
      continue;
    }
    if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
      cd.removed.push_back(v.AsNumeric());
    }
  }
}

void StatsDelta::RecordInsert(const Row& row) {
  ++inserted_;
  RecordAdded(row);
}

void StatsDelta::RecordDelete(const Row& row) {
  ++deleted_;
  RecordRemoved(row);
}

void StatsDelta::RecordUpdate(const Row& before, const Row& after) {
  ++updated_;
  RecordRemoved(before);
  RecordAdded(after);
}

bool StatsDelta::ShouldFold(const TableStats* base, int64_t live_rows) const {
  const int64_t c = churn();
  if (c < config_.min_churn_rows) return false;
  const double described =
      static_cast<double>(base != nullptr ? base->row_count : live_rows);
  return static_cast<double>(c) >=
         config_.fold_threshold * std::max(1.0, described);
}

namespace {

/// Replays one added numeric value into an equi-depth histogram: the
/// covering bucket's count grows; values outside the current domain widen
/// the first/last bucket's bound. Bucket *boundaries* are otherwise kept —
/// folds adjust counts, a full RUNSTATS re-equalizes depths.
void HistogramAdd(EquiDepthHistogram* h, double x) {
  if (h->empty()) return;
  if (x < h->bounds.front()) h->bounds.front() = x;
  if (x > h->bounds.back()) h->bounds.back() = x;
  for (size_t b = 0; b < h->counts.size(); ++b) {
    if (x <= h->bounds[b + 1] || b + 1 == h->counts.size()) {
      ++h->counts[b];
      break;
    }
  }
  ++h->total_rows;
}

/// Replays one removed numeric value: the covering bucket's count shrinks
/// (clamped at zero — the value may have arrived after the histogram was
/// built, in which case its bucket never counted it).
void HistogramRemove(EquiDepthHistogram* h, double x) {
  if (h->empty()) return;
  for (size_t b = 0; b < h->counts.size(); ++b) {
    if (x <= h->bounds[b + 1] || b + 1 == h->counts.size()) {
      if (h->counts[b] > 0) --h->counts[b];
      break;
    }
  }
  if (h->total_rows > 0) --h->total_rows;
}

}  // namespace

TableStats StatsDelta::Fold(const Table& table, const TableStats* base) {
  if (base == nullptr) {
    Reset();
    return CollectTableStats(table, config_.histogram_buckets);
  }
  TableStats next = *base;
  next.row_count = table.live_rows();
  const int ncols = std::min(static_cast<int>(columns_.size()),
                             static_cast<int>(next.columns.size()));
  for (int c = 0; c < ncols; ++c) {
    ColumnDelta& cd = columns_[static_cast<size_t>(c)];
    ColumnStats& cs = next.columns[static_cast<size_t>(c)];
    // Min/max widen from inserted values. Deletes never narrow them — a
    // widened-but-stale bound only loses selectivity precision, which the
    // CHECK machinery absorbs; narrowing would require a rescan.
    if (cd.min && (!cs.min || *cd.min < *cs.min)) cs.min = cd.min;
    if (cd.max && (!cs.max || *cd.max > *cs.max)) cs.max = cd.max;
    cs.null_count =
        std::max<int64_t>(0, cs.null_count + cd.nulls_added -
                                 cd.nulls_removed);
    for (double x : cd.added) HistogramAdd(&cs.histogram, x);
    for (double x : cd.removed) HistogramRemove(&cs.histogram, x);
    // NDV: the sketch counts distinct inserted values but cannot know how
    // many already existed, so the fold takes the conservative band
    // [old, old + sketch] clamped to the row count. Saturated sketches
    // under-estimate; a full RUNSTATS recalibrates.
    const int64_t sketch = static_cast<int64_t>(cd.ndv_sketch.size());
    cs.num_distinct =
        std::max(cs.num_distinct,
                 std::min(cs.num_distinct + sketch, next.row_count));
    cs.num_distinct = std::min(cs.num_distinct, next.row_count);
  }
  Reset();
  return next;
}

void StatsDelta::Reset() {
  inserted_ = deleted_ = updated_ = 0;
  for (ColumnDelta& cd : columns_) cd = ColumnDelta{};
}

}  // namespace txn
}  // namespace popdb
