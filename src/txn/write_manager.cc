#include "txn/write_manager.h"

#include <utility>
#include <vector>

#include "common/string_util.h"

namespace popdb {
namespace txn {

const char* WriteOpName(WriteOp op) {
  switch (op) {
    case WriteOp::kInsert:
      return "insert";
    case WriteOp::kUpdate:
      return "update";
    case WriteOp::kDelete:
      return "delete";
  }
  return "?";
}

WriteManager::WriteManager(Catalog* catalog, Config config)
    : catalog_(catalog), config_(config) {}

WriteManager::Lane* WriteManager::LaneFor(const std::string& table,
                                          int num_columns) {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::unique_ptr<Lane>& lane = lanes_[table];
  if (lane == nullptr) {
    lane = std::make_unique<Lane>();
    StatsDeltaConfig dc;
    dc.fold_threshold = config_.stats_fold_threshold;
    dc.min_churn_rows = config_.stats_min_churn_rows;
    dc.ndv_sketch_cap = config_.ndv_sketch_cap;
    dc.histogram_buckets = config_.histogram_buckets;
    lane->delta = std::make_unique<StatsDelta>(num_columns, dc);
  }
  return lane.get();
}

namespace {

/// Schema check for an incoming row: arity must match; each non-null cell
/// must hold the column's declared type (the binder coerces int literals
/// into double columns before this point).
Status CheckRowAgainstSchema(const Schema& schema, const Row& row) {
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row has %d values, table has %d columns",
                  static_cast<int>(row.size()), schema.num_columns()));
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null()) continue;
    if (v.type() != schema.column(c).type) {
      return Status::InvalidArgument(
          StrFormat("column '%s' expects %s, got %s",
                    schema.column(c).name.c_str(),
                    ValueTypeName(schema.column(c).type),
                    ValueTypeName(v.type())));
    }
  }
  return Status::Ok();
}

/// Collects the rids of live rows satisfying the statement's WHERE, against
/// a snapshot pinned *inside* the write lane — the lane serializes writers,
/// so this snapshot is the table's definitive current state.
std::vector<int64_t> MatchingRids(const TableSnapshot& snap,
                                  const std::vector<ResolvedPredicate>& where) {
  std::vector<int64_t> rids;
  for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
    if (!snap.alive(rid)) continue;
    const Row& row = snap.row(rid);
    bool pass = true;
    for (const ResolvedPredicate& p : where) {
      if (!EvalPredicate(p, row)) {
        pass = false;
        break;
      }
    }
    if (pass) rids.push_back(rid);
  }
  return rids;
}

}  // namespace

Result<int64_t> WriteManager::ApplyInsert(const WriteStatement& stmt,
                                          Table* table, Lane* lane) {
  for (const Row& row : stmt.rows) {
    Status s = CheckRowAgainstSchema(table->schema(), row);
    if (!s.ok()) return s;
  }
  const int64_t first_rid = table->AppendRows(stmt.rows);
  // Index maintenance after publish: a probe between publish and index
  // insert misses a row the *index's* present already could serve, but
  // every reader pinned its snapshot before probing — rows are only
  // visible through snapshots, so a late posting is never a wrong result,
  // at most a (transiently) smaller candidate superset.
  const std::vector<HashIndex*> indexes = catalog_->IndexesOn(stmt.table);
  for (size_t i = 0; i < stmt.rows.size(); ++i) {
    const Row& row = stmt.rows[i];
    for (HashIndex* index : indexes) {
      index->Insert(row[static_cast<size_t>(index->column())],
                    first_rid + static_cast<int64_t>(i));
    }
    lane->delta->RecordInsert(row);
  }
  return static_cast<int64_t>(stmt.rows.size());
}

Result<int64_t> WriteManager::ApplyUpdate(const WriteStatement& stmt,
                                          Table* table, Lane* lane) {
  const Schema& schema = table->schema();
  for (const SetClause& set : stmt.sets) {
    if (set.column < 0 || set.column >= schema.num_columns()) {
      return Status::InvalidArgument("SET column out of range");
    }
    const ValueType col_type = schema.column(set.column).type;
    if (set.is_delta) {
      if (col_type != ValueType::kInt && col_type != ValueType::kDouble) {
        return Status::InvalidArgument(
            StrFormat("column '%s' is not numeric",
                      schema.column(set.column).name.c_str()));
      }
      if (set.value.is_null()) {
        return Status::InvalidArgument("delta assignment requires a literal");
      }
    } else if (!set.value.is_null() && set.value.type() != col_type) {
      return Status::InvalidArgument(
          StrFormat("column '%s' expects %s, got %s",
                    schema.column(set.column).name.c_str(),
                    ValueTypeName(col_type), ValueTypeName(set.value.type())));
    }
  }
  const TableSnapshot snap = table->Snapshot();
  const std::vector<int64_t> rids = MatchingRids(snap, stmt.where);
  if (rids.empty()) return int64_t{0};
  // Record before-images from the pre-update snapshot, then publish.
  std::vector<Row> before;
  before.reserve(rids.size());
  for (int64_t rid : rids) before.push_back(snap.row(rid));
  const int64_t updated =
      table->UpdateRows(rids, [&stmt, &schema](Row* row) {
        for (const SetClause& set : stmt.sets) {
          Value& cell = (*row)[static_cast<size_t>(set.column)];
          if (!set.is_delta) {
            cell = set.value;
            continue;
          }
          if (cell.is_null()) continue;  // NULL + delta stays NULL.
          if (schema.column(set.column).type == ValueType::kInt) {
            cell = Value::Int(cell.AsInt() + set.value.AsInt());
          } else {
            cell = Value::Double(cell.AsNumeric() + set.value.AsNumeric());
          }
        }
      });
  // Superset-posting index maintenance: add postings for the new values of
  // indexed columns; the old postings stay and are filtered by probes.
  const std::vector<HashIndex*> indexes = catalog_->IndexesOn(stmt.table);
  if (!indexes.empty()) {
    const TableSnapshot after = table->Snapshot();
    for (int64_t rid : rids) {
      const Row& row = after.row(rid);
      for (HashIndex* index : indexes) {
        for (const SetClause& set : stmt.sets) {
          if (set.column == index->column()) {
            index->Insert(row[static_cast<size_t>(index->column())], rid);
            break;
          }
        }
      }
    }
  }
  {
    const TableSnapshot after = table->Snapshot();
    for (size_t i = 0; i < rids.size(); ++i) {
      lane->delta->RecordUpdate(before[i], after.row(rids[i]));
    }
  }
  return updated;
}

Result<int64_t> WriteManager::ApplyDelete(const WriteStatement& stmt,
                                          Table* table, Lane* lane) {
  const TableSnapshot snap = table->Snapshot();
  const std::vector<int64_t> rids = MatchingRids(snap, stmt.where);
  if (rids.empty()) return int64_t{0};
  const int64_t deleted = table->DeleteRows(rids);
  // Tombstoned postings stay in the indexes; probes re-check liveness.
  for (int64_t rid : rids) lane->delta->RecordDelete(snap.row(rid));
  return deleted;
}

Result<WriteResult> WriteManager::Apply(const WriteStatement& stmt) {
  Table* table = catalog_->GetMutableTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt.table);
  }
  Lane* lane = LaneFor(stmt.table, table->schema().num_columns());
  std::lock_guard<std::mutex> lock(lane->mu);

  Result<int64_t> affected = [&]() -> Result<int64_t> {
    switch (stmt.op) {
      case WriteOp::kInsert:
        return ApplyInsert(stmt, table, lane);
      case WriteOp::kUpdate:
        return ApplyUpdate(stmt, table, lane);
      case WriteOp::kDelete:
        return ApplyDelete(stmt, table, lane);
    }
    return Status::Internal("unhandled write op");
  }();
  if (!affected.ok()) return affected.status();

  WriteResult result;
  result.affected_rows = affected.value();
  // Threshold-gated incremental maintenance: fold only when accumulated
  // drift would mislead the optimizer; every fold bumps the stats version
  // exactly once (invalidating cached plans), so the gate also rations
  // plan-cache churn.
  const TableStats* base = catalog_->GetStats(stmt.table);
  if (lane->delta->ShouldFold(base, table->live_rows())) {
    TableStats folded = lane->delta->Fold(*table, base);
    Status s = catalog_->FoldStats(stmt.table, std::move(folded));
    if (s.ok()) {
      stats_folds_.fetch_add(1, std::memory_order_relaxed);
      result.stats_folded = true;
    }
  }
  result.stats_version = catalog_->stats_version();
  return result;
}

}  // namespace txn
}  // namespace popdb
