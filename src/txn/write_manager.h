#ifndef POPDB_TXN_WRITE_MANAGER_H_
#define POPDB_TXN_WRITE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "txn/stats_delta.h"
#include "txn/write.h"

namespace popdb {
namespace txn {

/// The write path: applies bound DML statements to catalog tables.
///
/// Each table has a *write lane* — a mutex plus a StatsDelta accumulator —
/// so writes to one table are serialized (the concurrency contract
/// storage::Table requires) while writes to different tables, and all
/// reads, proceed concurrently. A statement holds its lane for the whole
/// apply: row mutation (one atomic version publish), index maintenance,
/// delta accounting and the optional stats fold, so folded statistics
/// always describe a published state.
///
/// Readers are never blocked: queries pin table snapshots and index probes
/// re-check rows, so a write lane runs concurrently with any number of
/// in-flight analytical queries.
class WriteManager {
 public:
  struct Config {
    /// See txn::StatsDeltaConfig.
    double stats_fold_threshold = 0.10;
    int64_t stats_min_churn_rows = 32;
    size_t ndv_sketch_cap = 4096;
    int histogram_buckets = 32;
  };

  explicit WriteManager(Catalog* catalog) : WriteManager(catalog, Config()) {}
  WriteManager(Catalog* catalog, Config config);

  /// Applies one statement. Statement-level atomicity: readers see either
  /// none or all of its row effects (single version publish). Returns the
  /// affected-row count and whether statistics folded.
  Result<WriteResult> Apply(const WriteStatement& stmt);

  /// Total stats folds (= stats-version bumps caused by the write path).
  int64_t stats_folds() const {
    return stats_folds_.load(std::memory_order_relaxed);
  }

 private:
  struct Lane {
    std::mutex mu;
    std::unique_ptr<StatsDelta> delta;
  };

  /// Finds or creates the lane for `table` (lane map itself is guarded).
  Lane* LaneFor(const std::string& table, int num_columns);

  Result<int64_t> ApplyInsert(const WriteStatement& stmt, Table* table,
                              Lane* lane);
  Result<int64_t> ApplyUpdate(const WriteStatement& stmt, Table* table,
                              Lane* lane);
  Result<int64_t> ApplyDelete(const WriteStatement& stmt, Table* table,
                              Lane* lane);

  Catalog* catalog_;
  Config config_;
  std::mutex lanes_mu_;
  std::map<std::string, std::unique_ptr<Lane>> lanes_;
  std::atomic<int64_t> stats_folds_{0};
};

}  // namespace txn
}  // namespace popdb

#endif  // POPDB_TXN_WRITE_MANAGER_H_
