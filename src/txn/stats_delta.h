#ifndef POPDB_TXN_STATS_DELTA_H_
#define POPDB_TXN_STATS_DELTA_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/value.h"
#include "storage/statistics.h"
#include "storage/table.h"

namespace popdb {
namespace txn {

/// Knobs for incremental statistics maintenance.
struct StatsDeltaConfig {
  /// Fold accumulated deltas into the catalog statistics once the churn
  /// (inserted + deleted + updated rows since the last fold) reaches this
  /// fraction of the row count the statistics describe.
  double fold_threshold = 0.10;
  /// Absolute churn floor so tiny tables don't fold (and bump the stats
  /// version, invalidating cached plans) on every statement.
  int64_t min_churn_rows = 32;
  /// Cap on the per-column sketch of distinct inserted values.
  size_t ndv_sketch_cap = 4096;
  /// Bucket resolution when a fold has no base statistics and computes
  /// them from scratch.
  int histogram_buckets = 32;
};

/// Per-table accumulator of statistics drift, maintained by the write lane
/// (single writer per table — not internally synchronized). Instead of
/// re-scanning the table on every DML statement, the lane records cheap
/// per-statement deltas here; once drift crosses the configured threshold,
/// Fold() produces a fresh TableStats by adjusting the last published
/// statistics — row-count delta, min/max widening, histogram bucket-count
/// adjustments, NDV sketch merge — and the catalog bumps its stats version
/// exactly once per fold. In POP terms: small drift is absorbed by CHECK
/// validity ranges at run time; large drift re-aims the optimizer.
class StatsDelta {
 public:
  StatsDelta(int num_columns, StatsDeltaConfig config);

  void RecordInsert(const Row& row);
  void RecordDelete(const Row& row);
  void RecordUpdate(const Row& before, const Row& after);

  /// Rows churned since the last fold.
  int64_t churn() const { return inserted_ + deleted_ + updated_; }

  /// True when churn justifies folding against `base` (the currently
  /// published statistics; null if the table was never analyzed, in which
  /// case the threshold is taken against the table's current size).
  bool ShouldFold(const TableStats* base, int64_t live_rows) const;

  /// Produces the next TableStats for `table` and resets the accumulators.
  /// With a `base`, deltas are applied to a copy of it (no table scan);
  /// without one, statistics are computed from scratch.
  TableStats Fold(const Table& table, const TableStats* base);

 private:
  struct ColumnDelta {
    /// Min/max over inserted (and update-after) non-null values.
    std::optional<Value> min;
    std::optional<Value> max;
    int64_t nulls_added = 0;
    int64_t nulls_removed = 0;
    /// Numeric values added/removed — replayed into histogram buckets.
    std::vector<double> added;
    std::vector<double> removed;
    /// Distinct-value sketch of added values (capped; saturation recorded).
    std::unordered_set<size_t> ndv_sketch;
    bool ndv_saturated = false;
  };

  void RecordAdded(const Row& row);
  void RecordRemoved(const Row& row);
  void Reset();

  StatsDeltaConfig config_;
  int64_t inserted_ = 0;
  int64_t deleted_ = 0;
  int64_t updated_ = 0;
  std::vector<ColumnDelta> columns_;
};

}  // namespace txn
}  // namespace popdb

#endif  // POPDB_TXN_STATS_DELTA_H_
