#ifndef POPDB_TXN_WRITE_H_
#define POPDB_TXN_WRITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "exec/expr.h"

namespace popdb {
namespace txn {

/// Kind of a DML statement.
enum class WriteOp {
  kInsert,
  kUpdate,
  kDelete,
};

const char* WriteOpName(WriteOp op);

/// One UPDATE assignment, bound by the SQL binder: `column` is the schema
/// column index; `value` is the bound literal. With `is_delta`, the
/// assignment is `col = col + value` (value may be negative) — the
/// TPC-C-style balance adjustment shape — and requires a numeric column.
struct SetClause {
  int column = -1;
  Value value;
  bool is_delta = false;
};

/// A fully bound DML statement, ready for txn::WriteManager::Apply. The SQL
/// front end produces this from INSERT/UPDATE/DELETE text: column names are
/// resolved to schema positions, parameter markers are substituted, and
/// row shapes are checked against the schema.
struct WriteStatement {
  WriteOp op = WriteOp::kInsert;
  std::string table;

  /// INSERT: full rows in schema column order.
  std::vector<Row> rows;

  /// UPDATE: assignments applied to every matching row.
  std::vector<SetClause> sets;

  /// UPDATE/DELETE: conjunctive WHERE over the table's own columns
  /// (ResolvedPredicate::pos is the schema column index). Empty = all rows.
  std::vector<ResolvedPredicate> where;
};

/// Outcome of one applied write statement.
struct WriteResult {
  int64_t affected_rows = 0;
  /// Catalog stats version after the write (bumped only if it folded).
  int64_t stats_version = 0;
  /// True when this statement's drift crossed the threshold and folded the
  /// accumulated deltas into the table's statistics.
  bool stats_folded = false;
};

}  // namespace txn
}  // namespace popdb

#endif  // POPDB_TXN_WRITE_H_
