#include "tpch/tpch_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace popdb::tpch {

namespace {

const char* const kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};
const char* const kNationNames[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "HOUSEHOLD", "MACHINERY"};
const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECIFIED", "5-LOW"};
const char* const kShipModes[7] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR",
                                   "SHIP", "TRUCK"};
const char* const kReturnFlags[3] = {"A", "N", "R"};
const char* const kTypeSyllable1[6] = {"STANDARD", "SMALL", "MEDIUM",
                                       "LARGE", "ECONOMY", "PROMO"};
const char* const kTypeSyllable2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                       "POLISHED", "BRUSHED"};
const char* const kTypeSyllable3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                       "COPPER"};

int64_t Floor1(double v) { return std::max<int64_t>(1, static_cast<int64_t>(v)); }

}  // namespace

int64_t RowsAtScale(const char* name, double scale) {
  const std::string n = name;
  if (n == "region") return 5;
  if (n == "nation") return 25;
  if (n == "supplier") return Floor1(10000 * scale);
  if (n == "customer") return Floor1(150000 * scale);
  if (n == "orders") return Floor1(1500000 * scale);
  if (n == "lineitem") return Floor1(6000000 * scale);
  if (n == "part") return Floor1(200000 * scale);
  if (n == "partsupp") return Floor1(800000 * scale);
  return 0;
}

Status BuildCatalog(const GenConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  const double sf = config.scale;

  // ---- REGION.
  {
    Table region("region", Schema({{"r_regionkey", ValueType::kInt},
                                   {"r_name", ValueType::kString}}));
    for (int64_t r = 0; r < RowsAtScale("region", sf); ++r) {
      region.AppendRow({Value::Int(r), Value::String(kRegionNames[r % 5])});
    }
    Status s = catalog->AddTable(std::move(region));
    if (!s.ok()) return s;
  }

  // ---- NATION.
  {
    Table nation("nation", Schema({{"n_nationkey", ValueType::kInt},
                                   {"n_name", ValueType::kString},
                                   {"n_regionkey", ValueType::kInt}}));
    for (int64_t n = 0; n < RowsAtScale("nation", sf); ++n) {
      nation.AppendRow({Value::Int(n), Value::String(kNationNames[n % 25]),
                        Value::Int(n % 5)});
    }
    Status s = catalog->AddTable(std::move(nation));
    if (!s.ok()) return s;
  }

  const int64_t n_supplier = RowsAtScale("supplier", sf);
  const int64_t n_customer = RowsAtScale("customer", sf);
  const int64_t n_orders = RowsAtScale("orders", sf);
  const int64_t n_lineitem = RowsAtScale("lineitem", sf);
  const int64_t n_part = RowsAtScale("part", sf);
  const int64_t n_partsupp = RowsAtScale("partsupp", sf);

  // ---- SUPPLIER.
  {
    Table supplier("supplier", Schema({{"s_suppkey", ValueType::kInt},
                                       {"s_nationkey", ValueType::kInt},
                                       {"s_acctbal", ValueType::kDouble},
                                       {"s_name", ValueType::kString}}));
    supplier.Reserve(n_supplier);
    for (int64_t i = 0; i < n_supplier; ++i) {
      supplier.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 24)),
                          Value::Double(rng.UniformDouble() * 11000 - 1000),
                          Value::String(StrFormat("Supplier#%06lld",
                                                  static_cast<long long>(i)))});
    }
    Status s = catalog->AddTable(std::move(supplier));
    if (!s.ok()) return s;
  }

  // ---- CUSTOMER.
  {
    Table customer("customer", Schema({{"c_custkey", ValueType::kInt},
                                       {"c_nationkey", ValueType::kInt},
                                       {"c_mktsegment", ValueType::kString},
                                       {"c_acctbal", ValueType::kDouble},
                                       {"c_name", ValueType::kString}}));
    customer.Reserve(n_customer);
    for (int64_t i = 0; i < n_customer; ++i) {
      customer.AppendRow(
          {Value::Int(i), Value::Int(rng.UniformInt(0, 24)),
           Value::String(kSegments[rng.UniformInt(0, 4)]),
           Value::Double(rng.UniformDouble() * 11000 - 1000),
           Value::String(StrFormat("Customer#%06lld",
                                   static_cast<long long>(i)))});
    }
    Status s = catalog->AddTable(std::move(customer));
    if (!s.ok()) return s;
  }

  // ---- ORDERS.
  {
    Table orders("orders", Schema({{"o_orderkey", ValueType::kInt},
                                   {"o_custkey", ValueType::kInt},
                                   {"o_orderdate", ValueType::kInt},
                                   {"o_orderyear", ValueType::kInt},
                                   {"o_orderpriority", ValueType::kString},
                                   {"o_shippriority", ValueType::kInt},
                                   {"o_totalprice", ValueType::kDouble}}));
    orders.Reserve(n_orders);
    for (int64_t i = 0; i < n_orders; ++i) {
      const int64_t date = rng.UniformInt(kMinDate, kMaxDate - 1);
      orders.AppendRow({Value::Int(i),
                        Value::Int(rng.UniformInt(0, n_customer - 1)),
                        Value::Int(date), Value::Int(1992 + date / 365),
                        Value::String(kPriorities[rng.UniformInt(0, 4)]),
                        Value::Int(rng.UniformInt(0, 1)),
                        Value::Double(rng.UniformDouble() * 500000)});
    }
    Status s = catalog->AddTable(std::move(orders));
    if (!s.ok()) return s;
  }

  // ---- LINEITEM.
  {
    Table lineitem("lineitem", Schema({{"l_orderkey", ValueType::kInt},
                                       {"l_partkey", ValueType::kInt},
                                       {"l_suppkey", ValueType::kInt},
                                       {"l_quantity", ValueType::kInt},
                                       {"l_extendedprice", ValueType::kDouble},
                                       {"l_discount", ValueType::kDouble},
                                       {"l_returnflag", ValueType::kString},
                                       {"l_shipdate", ValueType::kInt},
                                       {"l_shipmode", ValueType::kString},
                                       {"l_late", ValueType::kInt},
                                       {"l_sel", ValueType::kInt}}));
    lineitem.Reserve(n_lineitem);
    for (int64_t i = 0; i < n_lineitem; ++i) {
      lineitem.AppendRow(
          {Value::Int(rng.UniformInt(0, n_orders - 1)),
           Value::Int(rng.UniformInt(0, n_part - 1)),
           Value::Int(rng.UniformInt(0, n_supplier - 1)),
           Value::Int(rng.UniformInt(1, 50)),
           Value::Double(rng.UniformDouble() * 100000),
           Value::Double(rng.UniformInt(0, 10) / 100.0),
           Value::String(kReturnFlags[rng.UniformInt(0, 2)]),
           Value::Int(rng.UniformInt(kMinDate, kMaxDate - 1)),
           Value::String(kShipModes[rng.UniformInt(0, 6)]),
           Value::Int(rng.Bernoulli(0.3) ? 1 : 0),
           Value::Int(rng.UniformInt(0, 99))});
    }
    Status s = catalog->AddTable(std::move(lineitem));
    if (!s.ok()) return s;
  }

  // ---- PART.
  {
    Table part("part", Schema({{"p_partkey", ValueType::kInt},
                               {"p_mfgr", ValueType::kString},
                               {"p_brand", ValueType::kString},
                               {"p_type", ValueType::kString},
                               {"p_size", ValueType::kInt},
                               {"p_retailprice", ValueType::kDouble}}));
    part.Reserve(n_part);
    for (int64_t i = 0; i < n_part; ++i) {
      const int mfgr = static_cast<int>(rng.UniformInt(1, 5));
      const std::string type =
          StrFormat("%s %s %s", kTypeSyllable1[rng.UniformInt(0, 5)],
                    kTypeSyllable2[rng.UniformInt(0, 4)],
                    kTypeSyllable3[rng.UniformInt(0, 4)]);
      part.AppendRow(
          {Value::Int(i), Value::String(StrFormat("Manufacturer#%d", mfgr)),
           Value::String(StrFormat("Brand#%d%lld", mfgr,
                                   static_cast<long long>(
                                       rng.UniformInt(1, 5)))),
           Value::String(type), Value::Int(rng.UniformInt(1, 50)),
           Value::Double(900 + rng.UniformDouble() * 1200)});
    }
    Status s = catalog->AddTable(std::move(part));
    if (!s.ok()) return s;
  }

  // ---- PARTSUPP.
  {
    Table partsupp("partsupp", Schema({{"ps_partkey", ValueType::kInt},
                                       {"ps_suppkey", ValueType::kInt},
                                       {"ps_supplycost", ValueType::kDouble},
                                       {"ps_availqty", ValueType::kInt}}));
    partsupp.Reserve(n_partsupp);
    for (int64_t i = 0; i < n_partsupp; ++i) {
      partsupp.AppendRow({Value::Int(i % n_part),
                          Value::Int(rng.UniformInt(0, n_supplier - 1)),
                          Value::Double(rng.UniformDouble() * 1000),
                          Value::Int(rng.UniformInt(1, 9999))});
    }
    Status s = catalog->AddTable(std::move(partsupp));
    if (!s.ok()) return s;
  }

  catalog->AnalyzeAll(config.histogram_buckets);

  if (config.build_indexes) {
    const std::pair<const char*, const char*> indexes[] = {
        {"region", "r_regionkey"},   {"nation", "n_nationkey"},
        {"supplier", "s_suppkey"},   {"customer", "c_custkey"},
        {"orders", "o_orderkey"},    {"lineitem", "l_orderkey"},
        {"lineitem", "l_partkey"},   {"part", "p_partkey"},
        {"partsupp", "ps_partkey"},  {"partsupp", "ps_suppkey"},
        {"orders", "o_custkey"},     {"supplier", "s_nationkey"},
        {"customer", "c_nationkey"},
    };
    for (const auto& [table, column] : indexes) {
      Status s = catalog->CreateIndex(table, column);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace popdb::tpch
