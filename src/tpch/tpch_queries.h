#ifndef POPDB_TPCH_TPCH_QUERIES_H_
#define POPDB_TPCH_TPCH_QUERIES_H_

#include <vector>

#include "opt/query.h"

namespace popdb::tpch {

/// Options for the query builders.
struct QueryOptions {
  /// Replace each query's headline selection predicate with a parameter
  /// marker bound to the same literal: results are identical, but the
  /// optimizer must fall back to default selectivities — the paper's
  /// mechanism for injecting cardinality estimation errors (Section 5.1).
  bool param_markers = false;
};

/// Query numbers modeled from the paper's experiments
/// (Q2, Q3, Q4, Q5, Q7, Q8, Q9, Q10, Q11, Q18).
std::vector<int> PaperQueries();

/// Builds TPC-H query `qnum` (one of PaperQueries()) against the generated
/// schema. The queries keep the original join graphs and predicate
/// structure; expression aggregates are simplified to single-column
/// aggregates (the plan space, which is what POP exercises, is unchanged).
QuerySpec MakeQuery(int qnum, const QueryOptions& options = {});

/// The Figure 11 robustness query: Q10's CUSTOMER-ORDERS-LINEITEM join
/// with the LINEITEM predicate "l_sel < ?" whose actual selectivity is
/// `selectivity_percent`/100. With `use_marker` the optimizer sees only a
/// parameter marker (constant default selectivity); otherwise it sees the
/// literal and estimates accurately from the histogram.
QuerySpec MakeQ10Selectivity(int selectivity_percent, bool use_marker);

}  // namespace popdb::tpch

#endif  // POPDB_TPCH_TPCH_QUERIES_H_
