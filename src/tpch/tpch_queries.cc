#include "tpch/tpch_queries.h"

#include "common/status.h"
#include "tpch/tpch_gen.h"

namespace popdb::tpch {

namespace {

/// Adds the headline predicate either as a literal or as parameter marker 0
/// bound to the same literal.
void AddHeadline(QuerySpec* q, ColRef col, PredKind kind, Value literal,
                 bool marker) {
  if (marker) {
    q->AddParamPred(col, kind, /*param_index=*/0);
    q->BindParam(std::move(literal));
  } else {
    q->AddPred(col, kind, std::move(literal));
  }
}

QuerySpec MakeQ2(const QueryOptions& o) {
  QuerySpec q("tpch_q2");
  const int p = q.AddTable("part");
  const int ps = q.AddTable("partsupp");
  const int s = q.AddTable("supplier");
  const int n = q.AddTable("nation");
  const int r = q.AddTable("region");
  q.AddJoin({p, Part::kPartKey}, {ps, Partsupp::kPartKey});
  q.AddJoin({ps, Partsupp::kSuppKey}, {s, Supplier::kSuppKey});
  q.AddJoin({s, Supplier::kNationKey}, {n, Nation::kNationKey});
  q.AddJoin({n, Nation::kRegionKey}, {r, Region::kRegionKey});
  AddHeadline(&q, {p, Part::kSize}, PredKind::kEq, Value::Int(15),
              o.param_markers);
  q.AddPred({p, Part::kType}, PredKind::kLike, Value::String("%BRASS"));
  q.AddPred({r, Region::kName}, PredKind::kEq, Value::String("EUROPE"));
  q.AddGroupBy({p, Part::kBrand});
  q.AddAgg(AggFunc::kMin, {ps, Partsupp::kSupplyCost});
  return q;
}

QuerySpec MakeQ3(const QueryOptions& o) {
  QuerySpec q("tpch_q3");
  const int c = q.AddTable("customer");
  const int ord = q.AddTable("orders");
  const int l = q.AddTable("lineitem");
  q.AddJoin({c, Customer::kCustKey}, {ord, Orders::kCustKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  AddHeadline(&q, {c, Customer::kMktSegment}, PredKind::kEq,
              Value::String("BUILDING"), o.param_markers);
  q.AddPred({ord, Orders::kOrderDate}, PredKind::kLt, Value::Int(1100));
  q.AddPred({l, Lineitem::kShipDate}, PredKind::kGt, Value::Int(1100));
  q.AddGroupBy({ord, Orders::kShipPriority});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

QuerySpec MakeQ4(const QueryOptions& o) {
  QuerySpec q("tpch_q4");
  const int ord = q.AddTable("orders");
  const int l = q.AddTable("lineitem");
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  q.AddPred({ord, Orders::kOrderDate}, PredKind::kGe, Value::Int(800));
  AddHeadline(&q, {ord, Orders::kOrderDate}, PredKind::kLt, Value::Int(890),
              o.param_markers);
  q.AddPred({l, Lineitem::kLate}, PredKind::kEq, Value::Int(1));
  q.AddGroupBy({ord, Orders::kOrderPriority});
  q.AddAgg(AggFunc::kCount);
  return q;
}

QuerySpec MakeQ5(const QueryOptions& o) {
  QuerySpec q("tpch_q5");
  const int c = q.AddTable("customer");
  const int ord = q.AddTable("orders");
  const int l = q.AddTable("lineitem");
  const int s = q.AddTable("supplier");
  const int n = q.AddTable("nation");
  const int r = q.AddTable("region");
  q.AddJoin({c, Customer::kCustKey}, {ord, Orders::kCustKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  q.AddJoin({l, Lineitem::kSuppKey}, {s, Supplier::kSuppKey});
  q.AddJoin({c, Customer::kNationKey}, {s, Supplier::kNationKey});
  q.AddJoin({s, Supplier::kNationKey}, {n, Nation::kNationKey});
  q.AddJoin({n, Nation::kRegionKey}, {r, Region::kRegionKey});
  AddHeadline(&q, {r, Region::kName}, PredKind::kEq, Value::String("ASIA"),
              o.param_markers);
  q.AddPred({ord, Orders::kOrderDate}, PredKind::kBetween, Value::Int(365),
            Value::Int(729));
  q.AddGroupBy({n, Nation::kName});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

QuerySpec MakeQ7(const QueryOptions& o) {
  QuerySpec q("tpch_q7");
  const int s = q.AddTable("supplier");
  const int l = q.AddTable("lineitem");
  const int ord = q.AddTable("orders");
  const int c = q.AddTable("customer");
  const int n1 = q.AddTable("nation");
  const int n2 = q.AddTable("nation");
  q.AddJoin({s, Supplier::kSuppKey}, {l, Lineitem::kSuppKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  q.AddJoin({c, Customer::kCustKey}, {ord, Orders::kCustKey});
  q.AddJoin({s, Supplier::kNationKey}, {n1, Nation::kNationKey});
  q.AddJoin({c, Customer::kNationKey}, {n2, Nation::kNationKey});
  AddHeadline(&q, {n1, Nation::kName}, PredKind::kEq,
              Value::String("FRANCE"), o.param_markers);
  q.AddPred({n2, Nation::kName}, PredKind::kEq, Value::String("GERMANY"));
  q.AddPred({l, Lineitem::kShipDate}, PredKind::kBetween, Value::Int(365),
            Value::Int(1094));
  q.AddGroupBy({n1, Nation::kName});
  q.AddGroupBy({n2, Nation::kName});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

QuerySpec MakeQ8(const QueryOptions& o) {
  QuerySpec q("tpch_q8");
  const int p = q.AddTable("part");
  const int l = q.AddTable("lineitem");
  const int s = q.AddTable("supplier");
  const int ord = q.AddTable("orders");
  const int c = q.AddTable("customer");
  const int n1 = q.AddTable("nation");
  const int r = q.AddTable("region");
  const int n2 = q.AddTable("nation");
  q.AddJoin({p, Part::kPartKey}, {l, Lineitem::kPartKey});
  q.AddJoin({s, Supplier::kSuppKey}, {l, Lineitem::kSuppKey});
  q.AddJoin({l, Lineitem::kOrderKey}, {ord, Orders::kOrderKey});
  q.AddJoin({ord, Orders::kCustKey}, {c, Customer::kCustKey});
  q.AddJoin({c, Customer::kNationKey}, {n1, Nation::kNationKey});
  q.AddJoin({n1, Nation::kRegionKey}, {r, Region::kRegionKey});
  q.AddJoin({s, Supplier::kNationKey}, {n2, Nation::kNationKey});
  q.AddPred({r, Region::kName}, PredKind::kEq, Value::String("AMERICA"));
  AddHeadline(&q, {p, Part::kType}, PredKind::kEq,
              Value::String("ECONOMY ANODIZED STEEL"), o.param_markers);
  q.AddPred({ord, Orders::kOrderDate}, PredKind::kBetween, Value::Int(1095),
            Value::Int(1824));
  q.AddGroupBy({ord, Orders::kOrderYear});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

QuerySpec MakeQ9(const QueryOptions& o) {
  QuerySpec q("tpch_q9");
  const int p = q.AddTable("part");
  const int s = q.AddTable("supplier");
  const int l = q.AddTable("lineitem");
  const int ps = q.AddTable("partsupp");
  const int ord = q.AddTable("orders");
  const int n = q.AddTable("nation");
  q.AddJoin({s, Supplier::kSuppKey}, {l, Lineitem::kSuppKey});
  q.AddJoin({ps, Partsupp::kSuppKey}, {l, Lineitem::kSuppKey});
  q.AddJoin({ps, Partsupp::kPartKey}, {l, Lineitem::kPartKey});
  q.AddJoin({p, Part::kPartKey}, {l, Lineitem::kPartKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  q.AddJoin({s, Supplier::kNationKey}, {n, Nation::kNationKey});
  AddHeadline(&q, {p, Part::kType}, PredKind::kLike,
              Value::String("%BRASS%"), o.param_markers);
  q.AddGroupBy({n, Nation::kName});
  q.AddGroupBy({ord, Orders::kOrderYear});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

QuerySpec MakeQ10(const QueryOptions& o) {
  QuerySpec q("tpch_q10");
  const int c = q.AddTable("customer");
  const int ord = q.AddTable("orders");
  const int l = q.AddTable("lineitem");
  const int n = q.AddTable("nation");
  q.AddJoin({c, Customer::kCustKey}, {ord, Orders::kCustKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  q.AddJoin({c, Customer::kNationKey}, {n, Nation::kNationKey});
  AddHeadline(&q, {l, Lineitem::kReturnFlag}, PredKind::kEq,
              Value::String("R"), o.param_markers);
  q.AddPred({ord, Orders::kOrderDate}, PredKind::kBetween, Value::Int(732),
            Value::Int(822));
  q.AddGroupBy({c, Customer::kName});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

QuerySpec MakeQ11(const QueryOptions& o) {
  QuerySpec q("tpch_q11");
  const int ps = q.AddTable("partsupp");
  const int s = q.AddTable("supplier");
  const int n = q.AddTable("nation");
  q.AddJoin({ps, Partsupp::kSuppKey}, {s, Supplier::kSuppKey});
  q.AddJoin({s, Supplier::kNationKey}, {n, Nation::kNationKey});
  AddHeadline(&q, {n, Nation::kName}, PredKind::kEq,
              Value::String("GERMANY"), o.param_markers);
  q.AddGroupBy({ps, Partsupp::kPartKey});
  q.AddAgg(AggFunc::kSum, {ps, Partsupp::kSupplyCost});
  return q;
}

QuerySpec MakeQ18(const QueryOptions& o) {
  QuerySpec q("tpch_q18");
  const int c = q.AddTable("customer");
  const int ord = q.AddTable("orders");
  const int l = q.AddTable("lineitem");
  q.AddJoin({c, Customer::kCustKey}, {ord, Orders::kCustKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  AddHeadline(&q, {l, Lineitem::kQuantity}, PredKind::kGt, Value::Int(45),
              o.param_markers);
  q.AddGroupBy({c, Customer::kName});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kQuantity});
  return q;
}

}  // namespace

std::vector<int> PaperQueries() { return {2, 3, 4, 5, 7, 8, 9, 10, 11, 18}; }

QuerySpec MakeQuery(int qnum, const QueryOptions& options) {
  switch (qnum) {
    case 2:
      return MakeQ2(options);
    case 3:
      return MakeQ3(options);
    case 4:
      return MakeQ4(options);
    case 5:
      return MakeQ5(options);
    case 7:
      return MakeQ7(options);
    case 8:
      return MakeQ8(options);
    case 9:
      return MakeQ9(options);
    case 10:
      return MakeQ10(options);
    case 11:
      return MakeQ11(options);
    case 18:
      return MakeQ18(options);
    default:
      POPDB_DCHECK(false);
      return QuerySpec("invalid");
  }
}

QuerySpec MakeQ10Selectivity(int selectivity_percent, bool use_marker) {
  QuerySpec q("tpch_q10_sel");
  const int c = q.AddTable("customer");
  const int ord = q.AddTable("orders");
  const int l = q.AddTable("lineitem");
  q.AddJoin({c, Customer::kCustKey}, {ord, Orders::kCustKey});
  q.AddJoin({ord, Orders::kOrderKey}, {l, Lineitem::kOrderKey});
  const Value bound = Value::Int(selectivity_percent);
  if (use_marker) {
    q.AddParamPred({l, Lineitem::kSel}, PredKind::kLt, 0);
    q.BindParam(bound);
  } else {
    q.AddPred({l, Lineitem::kSel}, PredKind::kLt, bound);
  }
  q.AddGroupBy({c, Customer::kNationKey});
  q.AddAgg(AggFunc::kSum, {l, Lineitem::kExtendedPrice});
  return q;
}

}  // namespace popdb::tpch
