#ifndef POPDB_TPCH_TPCH_GEN_H_
#define POPDB_TPCH_TPCH_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/catalog.h"

namespace popdb::tpch {

/// Column positions of the generated TPC-H tables. The schema follows the
/// TPC-H benchmark, narrowed to the columns the paper's queries touch, plus
/// three derived columns that stand in for SQL expressions the engine's
/// predicate language does not model directly:
///   - LINEITEM.l_late  (1 when l_receiptdate > l_commitdate, Q4),
///   - LINEITEM.l_sel   (uniform 0..99; "l_sel < ?" sweeps selectivity
///                       0..100% for the paper's Figure 11 experiment),
///   - ORDERS.o_orderyear (extracted from o_orderdate, Q8/Q9 group-by).
struct Region {
  enum : int { kRegionKey = 0, kName };
};
struct Nation {
  enum : int { kNationKey = 0, kName, kRegionKey };
};
struct Supplier {
  enum : int { kSuppKey = 0, kNationKey, kAcctBal, kName };
};
struct Customer {
  enum : int { kCustKey = 0, kNationKey, kMktSegment, kAcctBal, kName };
};
struct Orders {
  enum : int {
    kOrderKey = 0,
    kCustKey,
    kOrderDate,
    kOrderYear,
    kOrderPriority,
    kShipPriority,
    kTotalPrice,
  };
};
struct Lineitem {
  enum : int {
    kOrderKey = 0,
    kPartKey,
    kSuppKey,
    kQuantity,
    kExtendedPrice,
    kDiscount,
    kReturnFlag,
    kShipDate,
    kShipMode,
    kLate,
    kSel,
  };
};
struct Part {
  enum : int { kPartKey = 0, kMfgr, kBrand, kType, kSize, kRetailPrice };
};
struct Partsupp {
  enum : int { kPartKey = 0, kSuppKey, kSupplyCost, kAvailQty };
};

/// Generator parameters. `scale` is the TPC-H scale factor; the row counts
/// are the standard ones (LINEITEM = 6,000,000 x scale etc.) with small
/// floors so tiny scales stay joinable.
struct GenConfig {
  double scale = 0.005;
  uint64_t seed = 20040613;  ///< SIGMOD 2004 opening day.
  int histogram_buckets = 32;
  bool build_indexes = true;
};

/// Date domain: integer days since 1992-01-01, 7 years.
inline constexpr int kMinDate = 0;
inline constexpr int kMaxDate = 7 * 365;

/// Generates the full TPC-H database into `catalog`, collects statistics
/// and builds primary/foreign-key hash indexes.
Status BuildCatalog(const GenConfig& config, Catalog* catalog);

/// Row count of table `name` at scale `scale` (generator contract; exposed
/// for tests).
int64_t RowsAtScale(const char* name, double scale);

}  // namespace popdb::tpch

#endif  // POPDB_TPCH_TPCH_GEN_H_
