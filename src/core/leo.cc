#include "core/leo.h"

#include <algorithm>
#include <vector>

#include "common/span.h"
#include "common/string_util.h"

namespace popdb {

namespace {

/// Renders a predicate with its effective literal (markers resolved), in a
/// form that does not depend on query-local table ids.
std::string CanonicalPred(const Predicate& pred,
                          const std::vector<Value>& params) {
  std::string rhs;
  const Value& operand =
      pred.is_param ? params[static_cast<size_t>(pred.param_index)]
                    : pred.operand;
  if (pred.kind == PredKind::kBetween) {
    rhs = operand.ToString() + ".." + pred.operand2.ToString();
  } else if (pred.kind == PredKind::kIn) {
    std::vector<std::string> items;
    for (const Value& v : pred.in_list) items.push_back(v.ToString());
    std::sort(items.begin(), items.end());
    rhs = "(" + StrJoin(items, ",") + ")";
  } else {
    rhs = operand.ToString();
  }
  return StrFormat("c%d%s%s", pred.col.column, PredKindName(pred.kind),
                   rhs.c_str());
}

}  // namespace

std::string QueryFeedbackStore::SubplanSignature(const QuerySpec& query,
                                                 TableSet set) {
  std::vector<std::string> tables;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (!ContainsTable(set, t)) continue;
    std::vector<std::string> preds;
    for (const Predicate& p : query.local_preds()) {
      if (p.col.table_id == t) {
        preds.push_back(CanonicalPred(p, query.params()));
      }
    }
    std::sort(preds.begin(), preds.end());
    tables.push_back(query.table_name(t) + "[" + StrJoin(preds, "&") + "]");
  }
  std::sort(tables.begin(), tables.end());

  std::vector<std::string> joins;
  for (const JoinPredicate& j : query.join_preds()) {
    if (!ContainsTable(set, j.left.table_id) ||
        !ContainsTable(set, j.right.table_id)) {
      continue;
    }
    std::string a = StrFormat("%s.c%d", query.table_name(j.left.table_id).c_str(),
                              j.left.column);
    std::string b = StrFormat("%s.c%d",
                              query.table_name(j.right.table_id).c_str(),
                              j.right.column);
    if (b < a) std::swap(a, b);
    joins.push_back(a + "=" + b);
  }
  std::sort(joins.begin(), joins.end());
  return StrJoin(tables, ",") + "|" + StrJoin(joins, "&");
}

void QueryFeedbackStore::Absorb(const QuerySpec& query,
                                const FeedbackMap& feedback) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = false;
  for (const auto& [set, fb] : feedback) {
    const std::string sig = SubplanSignature(query, set);
    CardFeedback& stored = store_[sig];
    if (fb.exact >= 0) {
      if (stored.exact != fb.exact) {
        stored.exact = fb.exact;
        changed = true;
      }
    } else if (fb.lower_bound >= 0 && stored.exact < 0 &&
               fb.lower_bound > stored.lower_bound) {
      stored.lower_bound = fb.lower_bound;
      changed = true;
    }
  }
  // Re-absorbing identical actuals (the repeat-query steady state) leaves
  // the epoch alone so cached plans stay servable.
  if (changed) ++epoch_;
}

void QueryFeedbackStore::Seed(const QuerySpec& query,
                              FeedbackCache* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++seed_lookups_;
  if (store_.empty()) return;
  // Enumerate connected-ish subsets lazily: signatures are computed per
  // subset; queries are small (<= ~12 tables), so the full power set is
  // affordable and simpler than tracking connectivity.
  const TableSet full = query.AllTables();
  if (query.num_tables() > 16) return;  // Guard pathological inputs.
  int64_t seeded = 0;
  for (TableSet set = 1; set <= full; ++set) {
    auto it = store_.find(SubplanSignature(query, set));
    if (it == store_.end()) continue;
    if (it->second.exact >= 0) {
      out->RecordExact(set, it->second.exact);
      ++seeded;
    } else if (it->second.lower_bound >= 0) {
      out->RecordLowerBound(set, it->second.lower_bound);
      ++seeded;
    }
  }
  if (seeded > 0) {
    ++seed_hits_;
    seeded_cards_ += seeded;
    TRACE_INSTANT_ARG("feedback_seeded", "pop", "entries", seeded);
  }
}

}  // namespace popdb
