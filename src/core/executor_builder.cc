#include "core/executor_builder.h"

#include "common/string_util.h"
#include "exec/agg.h"
#include "exec/check.h"
#include "exec/join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "opt/optimizer.h"

namespace popdb {

ExecutorBuilder::ExecutorBuilder(const Catalog& catalog,
                                 const QuerySpec& query,
                                 const std::vector<Row>* already_returned,
                                 bool offer_hsjn_builds,
                                 ParallelPolicy parallel,
                                 TableSnapshotSet* snapshots)
    : catalog_(catalog),
      query_(query),
      already_returned_(already_returned),
      offer_hsjn_builds_(offer_hsjn_builds),
      parallel_(parallel),
      snapshots_(snapshots != nullptr ? snapshots : &owned_snapshots_),
      widths_(QueryTableWidths(catalog, query)) {}

RowLayout ExecutorBuilder::LayoutFor(TableSet set) const {
  return RowLayout(set, widths_);
}

std::vector<ResolvedPredicate> ExecutorBuilder::ResolveTablePreds(
    const std::vector<int>& pred_ids) const {
  std::vector<ResolvedPredicate> out;
  out.reserve(pred_ids.size());
  for (int pid : pred_ids) {
    const Predicate& pred = query_.local_preds()[static_cast<size_t>(pid)];
    // Scans evaluate against the table's own row, so the position is the
    // column index itself.
    out.push_back(ResolvePredicate(pred, pred.col.column, query_.params()));
  }
  return out;
}

std::vector<int> ExecutorBuilder::ResolveKeys(
    const std::vector<int>& join_pred_ids, TableSet side_set) const {
  const RowLayout layout = LayoutFor(side_set);
  std::vector<int> keys;
  keys.reserve(join_pred_ids.size());
  for (int jid : join_pred_ids) {
    const JoinPredicate& jp = query_.join_preds()[static_cast<size_t>(jid)];
    const ColRef& side =
        ContainsTable(side_set, jp.left.table_id) ? jp.left : jp.right;
    keys.push_back(layout.Resolve(side));
  }
  return keys;
}

Result<BuiltPlan> ExecutorBuilder::Build(const PlanNode& plan) {
  edges_.clear();
  owned_indexes_.clear();
  suppress_edges_ = false;
  Result<std::unique_ptr<Operator>> root = BuildNode(plan);
  if (!root.ok()) return root.status();
  BuiltPlan built;
  built.root = std::move(root.value());
  built.edges = std::move(edges_);
  built.owned_indexes = std::move(owned_indexes_);
  return built;
}

Result<std::unique_ptr<Operator>> ExecutorBuilder::BuildNode(
    const PlanNode& node) {
  std::unique_ptr<Operator> op;
  switch (node.kind) {
    case PlanOpKind::kTableScan: {
      const Table* table = catalog_.GetTable(node.table_name);
      if (table == nullptr) {
        return Status::NotFound("no such table: " + node.table_name);
      }
      std::vector<ResolvedPredicate> preds = ResolveTablePreds(node.pred_ids);
      // All reads go through the query's pinned snapshot; the morsel range
      // is sized from it too, so morsels cover exactly the pinned rid
      // space regardless of concurrent appends.
      const TableSnapshot& snapshot = snapshots_->Pin(*table);
      // With a modeled per-morsel I/O stall, even dop=1 goes through the
      // morsel loop (a serial engine reads the same pages one at a time),
      // so scaling benchmarks compare against an honest serial baseline.
      const bool morselize =
          parallel_.enabled() || parallel_.morsel_stall_ms > 0;
      if (morselize && snapshot.num_rows() >= parallel_.min_parallel_rows) {
        // Morsel-parallel fragment: the scan (with its pushed-down
        // predicates) runs once per rid-range morsel; the exchange merges
        // in rid order, so consumers see the serial row stream. The factory
        // captures the snapshot by value: morsel scans constructed on
        // worker threads read the same pinned version.
        const int table_id = node.table_id;
        auto shared_preds = std::make_shared<
            const std::vector<ResolvedPredicate>>(std::move(preds));
        op = std::make_unique<MorselExchangeOp>(
            [snapshot, table_id, shared_preds](int64_t begin, int64_t end) {
              return std::make_unique<TableScanOp>(snapshot, table_id,
                                                   *shared_preds, begin, end);
            },
            snapshot.num_rows(), TableBit(node.table_id), parallel_);
      } else {
        op = std::make_unique<TableScanOp>(snapshot, node.table_id,
                                           std::move(preds));
      }
      break;
    }
    case PlanOpKind::kMatViewScan: {
      if (node.mv_rows == nullptr) {
        return Status::Internal("matview scan without rows: " + node.mv_name);
      }
      // The optimizer chose to reuse a harvested intermediate result.
      TRACE_INSTANT_ARG("matview_reused", "pop", "rows",
                        static_cast<int64_t>(node.mv_rows->size()));
      op = std::make_unique<MatViewScanOp>(node.mv_rows, node.set);
      break;
    }
    case PlanOpKind::kNljn: {
      Result<std::unique_ptr<Operator>> outer = BuildNode(*node.children[0]);
      if (!outer.ok()) return outer.status();
      const PlanNode& inner_node = *node.children[1];
      InnerAccess inner;
      inner.table_id = inner_node.table_id;
      if (inner_node.kind == PlanOpKind::kMatViewScan) {
        inner.mv_rows = inner_node.mv_rows;
      } else {
        inner.table = catalog_.GetTable(inner_node.table_name);
        if (inner.table == nullptr) {
          return Status::NotFound("no such table: " + inner_node.table_name);
        }
        inner.snapshot = snapshots_->Pin(*inner.table);
      }
      inner.local_preds = ResolveTablePreds(inner_node.pred_ids);
      const RowLayout outer_layout = LayoutFor(node.children[0]->set);
      for (int jid : node.join_pred_ids) {
        const JoinPredicate& jp =
            query_.join_preds()[static_cast<size_t>(jid)];
        const bool left_is_inner = jp.left.table_id == inner.table_id;
        const ColRef& inner_side = left_is_inner ? jp.left : jp.right;
        const ColRef& outer_side = left_is_inner ? jp.right : jp.left;
        InnerAccess::JoinCond jc;
        jc.outer_pos = outer_layout.Resolve(outer_side);
        jc.inner_pos = inner_side.column;
        inner.join_conds.push_back(jc);
      }
      if (node.use_index && inner.table != nullptr) {
        inner.index = catalog_.FindIndex(inner_node.table_name,
                                         node.index_col);
      } else if (node.use_index && inner.mv_rows != nullptr) {
        // The optimizer decided to index the materialized view before
        // reusing it (Section 2.3).
        owned_indexes_.push_back(std::make_unique<HashIndex>(
            *inner.mv_rows, node.index_col, inner_node.mv_name));
        inner.index = owned_indexes_.back().get();
      }
      const MergeSpec merge =
          MergeSpec::Make(outer_layout, LayoutFor(inner_node.set),
                          LayoutFor(node.set), widths_);
      op = std::make_unique<NljnOp>(std::move(outer.value()),
                                    std::move(inner), merge, node.set);
      break;
    }
    case PlanOpKind::kHsjn: {
      Result<std::unique_ptr<Operator>> probe = BuildNode(*node.children[0]);
      if (!probe.ok()) return probe.status();
      Result<std::unique_ptr<Operator>> build = BuildNode(*node.children[1]);
      if (!build.ok()) return build.status();
      const TableSet probe_set = node.children[0]->set;
      const TableSet build_set = node.children[1]->set;
      const MergeSpec merge = MergeSpec::Make(
          LayoutFor(probe_set), LayoutFor(build_set), LayoutFor(node.set),
          widths_);
      op = std::make_unique<HsjnOp>(
          std::move(probe.value()), std::move(build.value()),
          ResolveKeys(node.join_pred_ids, probe_set),
          ResolveKeys(node.join_pred_ids, build_set), merge, node.set,
          node.check, offer_hsjn_builds_);
      break;
    }
    case PlanOpKind::kMgjn: {
      Result<std::unique_ptr<Operator>> left = BuildNode(*node.children[0]);
      if (!left.ok()) return left.status();
      Result<std::unique_ptr<Operator>> right = BuildNode(*node.children[1]);
      if (!right.ok()) return right.status();
      const TableSet left_set = node.children[0]->set;
      const TableSet right_set = node.children[1]->set;
      const MergeSpec merge = MergeSpec::Make(
          LayoutFor(left_set), LayoutFor(right_set), LayoutFor(node.set),
          widths_);
      op = std::make_unique<MgjnOp>(
          std::move(left.value()), std::move(right.value()),
          ResolveKeys(node.join_pred_ids, left_set),
          ResolveKeys(node.join_pred_ids, right_set), merge, node.set);
      break;
    }
    case PlanOpKind::kSort: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<SortOp>(std::move(child.value()),
                                    node.sort_keys, node.set);
      break;
    }
    case PlanOpKind::kTemp: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<TempOp>(std::move(child.value()), node.set);
      break;
    }
    case PlanOpKind::kAgg: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<HashAggOp>(std::move(child.value()),
                                       node.group_positions, node.agg_specs);
      break;
    }
    case PlanOpKind::kProject: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<ProjectOp>(std::move(child.value()),
                                       node.positions);
      break;
    }
    case PlanOpKind::kFilter: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<FilterOp>(std::move(child.value()),
                                      node.filter_preds, node.set);
      break;
    }
    case PlanOpKind::kCheck: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<CheckOp>(std::move(child.value()), node.check);
      break;
    }
    case PlanOpKind::kCheckMat: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<CheckMaterializedOp>(std::move(child.value()),
                                                 node.check);
      break;
    }
    case PlanOpKind::kBufCheck: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<BufCheckOp>(std::move(child.value()), node.check);
      break;
    }
    case PlanOpKind::kWorkBound: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<WorkBoundOp>(std::move(child.value()),
                                         node.work_budget, node.set);
      break;
    }
    case PlanOpKind::kRidTrack: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      op = std::make_unique<RidTrackOp>(std::move(child.value()), node.set);
      break;
    }
    case PlanOpKind::kAntiComp: {
      Result<std::unique_ptr<Operator>> child = BuildNode(*node.children[0]);
      if (!child.ok()) return child.status();
      if (already_returned_ == nullptr) {
        return Status::Internal("compensation node without returned rows");
      }
      op = std::make_unique<AntiCompensateOp>(std::move(child.value()),
                                              *already_returned_, node.set);
      // Row counts at and above a compensation anti-join are not true
      // subplan cardinalities (previously returned rows are suppressed);
      // exclude them from feedback harvesting.
      suppress_edges_ = true;
      break;
    }
  }
  if (op == nullptr) {
    return Status::Internal("unhandled plan operator");
  }
  // Attach the optimizer's per-node estimates so EXPLAIN ANALYZE can report
  // estimated vs. actual rows for the executed tree.
  op->AnnotateEstimates(node.card, node.cost, NodeDetail(node));
  if (node.set != 0 && !suppress_edges_) {
    edges_.emplace_back(node.set, op.get());
  }
  return op;
}

std::string ExecutorBuilder::NodeDetail(const PlanNode& node) {
  switch (node.kind) {
    case PlanOpKind::kTableScan:
      return node.table_name;
    case PlanOpKind::kMatViewScan:
      return node.mv_name;
    case PlanOpKind::kNljn: {
      std::string detail = node.use_index ? "ix" : "scan";
      const PlanNode& inner = *node.children[1];
      detail += ":" + (inner.kind == PlanOpKind::kMatViewScan
                           ? inner.mv_name
                           : inner.table_name);
      return detail;
    }
    case PlanOpKind::kCheck:
    case PlanOpKind::kCheckMat:
    case PlanOpKind::kBufCheck:
      if (node.check.enabled) {
        return StrFormat("%s [%.4g, %.4g]", CheckFlavorName(node.check.flavor),
                         node.check.lo, node.check.hi);
      }
      return "disabled";
    case PlanOpKind::kWorkBound:
      return StrFormat("budget=%.4g", node.work_budget);
    default:
      return std::string();
  }
}

}  // namespace popdb
