#ifndef POPDB_CORE_VALIDITY_H_
#define POPDB_CORE_VALIDITY_H_

#include <cstdint>

#include "opt/cost_model.h"
#include "opt/enumerator.h"
#include "opt/plan.h"

namespace popdb {

/// Knobs for the modified Newton-Raphson root finder (paper Figure 5).
struct ValidityConfig {
  /// Iteration cap; the paper reports three iterations suffice.
  int max_iterations = 3;
  /// Multiplicative probe step used to sample the local gradient.
  double probe_step = 1.1;
  /// Jump factor applied when the iteration diverges.
  double divergence_jump = 10.0;
  /// Damping constant in the extrapolation step (the "11" in Figure 5f).
  double damping = 11.0;
  /// Upper limit for probed cardinalities (guards against overflow).
  double max_card = 1e18;
};

/// Computes validity ranges during optimizer pruning (paper Section 2.2).
///
/// Plugged into the dynamic-programming enumerator as a PruneObserver: each
/// time a structurally equivalent alternative plan is pruned, the analyzer
/// solves cost(P_alt, c) - cost(P_opt, c) = 0 per input edge with a
/// modified Newton-Raphson iteration and narrows the winner's validity
/// range for that edge. Bounds are only adopted after verifying an actual
/// cost inversion at the candidate cardinality, keeping the analysis
/// conservative: a violated range guarantees the plan is suboptimal under
/// the cost model (no false suboptimality bounds).
class ValidityRangeAnalyzer : public PruneObserver {
 public:
  ValidityRangeAnalyzer(const CostModel& cost_model, ValidityConfig config)
      : cost_model_(cost_model), config_(config) {}

  void OnPrune(PlanNode* winner, const PlanNode& loser) override;

  /// Smallest cardinality c > start at which `loser` (with its edge in
  /// `loser_slot` carrying c) becomes no more expensive than `winner`
  /// (edge in `winner_slot`). Returns +infinity when no verified crossover
  /// is found within the iteration budget.
  double FindUpperCrossover(const PlanNode& winner, int winner_slot,
                            const PlanNode& loser, int loser_slot,
                            double start) const;

  /// Mirror image of FindUpperCrossover probing downward; returns 0 when
  /// no verified crossover is found.
  double FindLowerCrossover(const PlanNode& winner, int winner_slot,
                            const PlanNode& loser, int loser_slot,
                            double start) const;

  /// Number of edges whose range this analyzer narrowed (diagnostics).
  int64_t ranges_narrowed() const { return ranges_narrowed_; }
  /// Number of cost-function evaluations performed (diagnostics: this is
  /// the "only overhead" of the method per Section 2.2).
  int64_t cost_evaluations() const { return cost_evaluations_; }

 private:
  double CostDiff(const PlanNode& winner, int winner_slot,
                  const PlanNode& loser, int loser_slot, double card) const;

  const CostModel& cost_model_;
  ValidityConfig config_;
  mutable int64_t ranges_narrowed_ = 0;
  mutable int64_t cost_evaluations_ = 0;
};

}  // namespace popdb

#endif  // POPDB_CORE_VALIDITY_H_
