#include "core/explain.h"

#include "common/string_util.h"

namespace popdb {

PlanProfileNode ProfileOperatorTree(const Operator& root) {
  PlanProfileNode node;
  node.name = root.name();
  node.detail = root.detail();
  node.est_rows = root.est_rows();
  node.est_cost = root.est_cost();
  node.actual_rows = root.rows_produced();
  node.completed = root.eof_seen();
  node.next_calls = root.stats().next_calls;
  node.batches = root.stats().batches;
  node.open_ms = root.stats().open_ms();
  node.next_ms = root.stats().next_ms();
  node.close_ms = root.stats().close_ms();
  for (const Operator* child : root.children()) {
    node.children.push_back(ProfileOperatorTree(*child));
  }
  return node;
}

namespace {

void RenderNode(const PlanProfileNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  if (!node.detail.empty()) {
    *out += " [";
    *out += node.detail;
    *out += "]";
  }
  if (node.has_estimates()) {
    *out += StrFormat("  est_rows=%.6g", node.est_rows);
  } else {
    *out += "  est_rows=?";
  }
  *out += StrFormat("  act_rows=%lld%s",
                    static_cast<long long>(node.actual_rows),
                    node.completed ? "" : "+");
  const double q = node.QError();
  if (q >= 0) {
    *out += StrFormat("  q=%.3g", q);
  } else {
    *out += "  q=?";
  }
  *out += StrFormat("  next_calls=%lld", static_cast<long long>(node.next_calls));
  if (node.batches > 0) {
    *out += StrFormat("  batches=%lld", static_cast<long long>(node.batches));
  }
  *out += StrFormat("  time=%.3fms\n",
                    node.open_ms + node.next_ms + node.close_ms);
  for (const PlanProfileNode& child : node.children) {
    RenderNode(child, depth + 1, out);
  }
}

}  // namespace

std::string RenderProfileText(const PlanProfileNode& node) {
  std::string out;
  RenderNode(node, 0, &out);
  return out;
}

void ProfileToJson(const PlanProfileNode& node, JsonWriter* w) {
  w->BeginObject();
  w->Key("op").String(node.name);
  if (!node.detail.empty()) w->Key("detail").String(node.detail);
  w->Key("est_rows").Double(node.est_rows);
  w->Key("est_cost").Double(node.est_cost);
  w->Key("act_rows").Int(node.actual_rows);
  w->Key("completed").Bool(node.completed);
  w->Key("next_calls").Int(node.next_calls);
  w->Key("batches").Int(node.batches);
  w->Key("open_ms").Double(node.open_ms);
  w->Key("next_ms").Double(node.next_ms);
  w->Key("close_ms").Double(node.close_ms);
  const double q = node.QError();
  if (q >= 0) w->Key("qerror").Double(q);
  w->Key("children").BeginArray();
  for (const PlanProfileNode& child : node.children) {
    ProfileToJson(child, w);
  }
  w->EndArray();
  w->EndObject();
}

std::string ProfileToJsonString(const PlanProfileNode& node) {
  JsonWriter w;
  ProfileToJson(node, &w);
  return w.str();
}

bool ProfileFromJson(const JsonValue& json, PlanProfileNode* out) {
  if (json.kind() != JsonValue::Kind::kObject) return false;
  const JsonValue* op = json.Find("op");
  if (op == nullptr || op->kind() != JsonValue::Kind::kString) return false;
  PlanProfileNode node;
  node.name = op->AsString();
  node.detail = json.GetString("detail", "");
  node.est_rows = json.GetNumber("est_rows", -1.0);
  node.est_cost = json.GetNumber("est_cost", -1.0);
  node.actual_rows = json.GetInt("act_rows", 0);
  node.completed = json.GetBool("completed", false);
  node.next_calls = json.GetInt("next_calls", 0);
  node.batches = json.GetInt("batches", 0);
  node.open_ms = json.GetNumber("open_ms", 0.0);
  node.next_ms = json.GetNumber("next_ms", 0.0);
  node.close_ms = json.GetNumber("close_ms", 0.0);
  if (const JsonValue* children = json.Find("children")) {
    if (children->kind() != JsonValue::Kind::kArray) return false;
    for (const JsonValue& child : children->items()) {
      PlanProfileNode child_node;
      if (!ProfileFromJson(child, &child_node)) return false;
      node.children.push_back(std::move(child_node));
    }
  }
  *out = std::move(node);
  return true;
}

namespace {

bool SameShape(const PlanProfileNode& a, const PlanProfileNode& b) {
  if (a.name != b.name || a.children.size() != b.children.size())
    return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!SameShape(a.children[i], b.children[i])) return false;
  }
  return true;
}

void AccumulateInto(PlanProfileNode* agg, const PlanProfileNode& shard) {
  // Estimates were scaled down per shard by the coordinator, so summing
  // them recovers the global estimate the aggregate actuals compare to.
  if (agg->est_rows >= 0.0 && shard.est_rows >= 0.0) {
    agg->est_rows += shard.est_rows;
  } else {
    agg->est_rows = -1.0;
  }
  if (agg->est_cost >= 0.0 && shard.est_cost >= 0.0) {
    agg->est_cost += shard.est_cost;
  } else {
    agg->est_cost = -1.0;
  }
  agg->actual_rows += shard.actual_rows;
  agg->completed = agg->completed && shard.completed;
  agg->next_calls += shard.next_calls;
  agg->batches += shard.batches;
  agg->open_ms += shard.open_ms;
  agg->next_ms += shard.next_ms;
  agg->close_ms += shard.close_ms;
  for (size_t i = 0; i < agg->children.size(); ++i) {
    AccumulateInto(&agg->children[i], shard.children[i]);
  }
}

}  // namespace

double PeakProfileQError(const PlanProfileNode& node) {
  double peak = node.QError();
  for (const PlanProfileNode& child : node.children) {
    peak = std::max(peak, PeakProfileQError(child));
  }
  return peak;
}

bool AggregateProfiles(const std::vector<const PlanProfileNode*>& shards,
                       PlanProfileNode* out) {
  if (shards.empty() || shards[0] == nullptr) return false;
  for (size_t i = 1; i < shards.size(); ++i) {
    if (shards[i] == nullptr || !SameShape(*shards[0], *shards[i]))
      return false;
  }
  PlanProfileNode agg = *shards[0];
  for (size_t i = 1; i < shards.size(); ++i) AccumulateInto(&agg, *shards[i]);
  *out = std::move(agg);
  return true;
}

}  // namespace popdb
