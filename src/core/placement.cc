#include "core/placement.h"

#include <functional>
#include <limits>

namespace popdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Builds the CheckSpec guarding `edge_set` from its validity range.
CheckSpec MakeSpec(const ValidityRange& range, TableSet edge_set,
                   CheckFlavor flavor, const PopConfig& config) {
  CheckSpec spec;
  spec.enabled = true;
  spec.flavor = flavor;
  spec.edge_set = edge_set;
  spec.observe_only = config.observe_only;
  const double f = config.check_safety_factor;
  spec.lo = range.lo > 0 ? range.lo / f : 0.0;
  spec.hi = range.hi < kInf ? range.hi * f : kInf;
  return spec;
}

bool Eligible(const ValidityRange& range, const PopConfig& config) {
  // A checkpoint is useful only where an alternative plan exists, which is
  // exactly when pruning narrowed the range (Section 4).
  return !config.require_narrowed_range || range.IsNarrowed();
}

bool IsMaterialization(PlanOpKind kind) {
  return kind == PlanOpKind::kSort || kind == PlanOpKind::kTemp;
}

std::shared_ptr<PlanNode> WrapCheckMat(std::shared_ptr<PlanNode> child,
                                       CheckSpec spec,
                                       const CostModel& cost_model) {
  auto check = std::make_shared<PlanNode>();
  check->kind = PlanOpKind::kCheckMat;
  check->set = child->set;
  check->card = child->card;
  check->op_cost = cost_model.CheckCost(child->card);
  check->cost = child->cost + check->op_cost;
  check->check = spec;
  check->children = {std::move(child)};
  check->child_validity.resize(1);
  return check;
}

std::shared_ptr<PlanNode> WrapCheck(std::shared_ptr<PlanNode> child,
                                    CheckSpec spec,
                                    const CostModel& cost_model) {
  auto check = std::make_shared<PlanNode>();
  check->kind = PlanOpKind::kCheck;
  check->set = child->set;
  check->card = child->card;
  check->op_cost = cost_model.CheckCost(child->card);
  check->cost = child->cost + check->op_cost;
  check->check = spec;
  check->children = {std::move(child)};
  check->child_validity.resize(1);
  return check;
}

std::shared_ptr<PlanNode> WrapTemp(std::shared_ptr<PlanNode> child,
                                   const CostModel& cost_model) {
  auto temp = std::make_shared<PlanNode>();
  temp->kind = PlanOpKind::kTemp;
  temp->set = child->set;
  temp->card = child->card;
  temp->op_cost = cost_model.TempCost(child->card);
  temp->cost = child->cost + temp->op_cost;
  temp->children = {std::move(child)};
  temp->child_validity.resize(1);
  return temp;
}

class Placer {
 public:
  Placer(const PopConfig& config, const CostModel& cost_model, bool spj,
         double plan_cost)
      : config_(config),
        cost_model_(cost_model),
        spj_(spj),
        plan_cost_(plan_cost) {}

  PlacementStats stats() const { return stats_; }

  void Walk(PlanNode* node) {
    for (size_t slot = 0; slot < node->children.size(); ++slot) {
      Walk(node->children[slot].get());
      PlaceOnEdge(node, static_cast<int>(slot));
    }
  }

 private:
  void PlaceOnEdge(PlanNode* node, int slot) {
    std::shared_ptr<PlanNode>& child =
        node->children[static_cast<size_t>(slot)];
    const ValidityRange& range =
        node->child_validity[static_cast<size_t>(slot)];
    if (!Eligible(range, config_)) return;
    // Confidence filter (Section 4 future work): only guard edges whose
    // estimate rests on enough optimizer assumptions to be unreliable.
    if (config_.min_assumptions_for_checks > 0 &&
        child->assumptions < config_.min_assumptions_for_checks) {
      return;
    }
    const TableSet edge_set = child->set;

    // LC on the build side of a hash join: the build is a natural
    // materialization point; the join itself evaluates the range once the
    // build completes.
    if (config_.enable_lc && node->kind == PlanOpKind::kHsjn && slot == 1) {
      node->check = MakeSpec(range, edge_set, CheckFlavor::kLazy, config_);
      ++stats_.lc;
      return;
    }

    // LC above existing SORT/TEMP materialization points.
    if (IsMaterialization(child->kind)) {
      if (config_.enable_ecwc) {
        // ECWC: eager streaming check *below* the materialization point —
        // reacts while the materialization is still being built.
        std::shared_ptr<PlanNode>& grandchild = child->children[0];
        grandchild = WrapCheck(
            grandchild,
            MakeSpec(range, grandchild->set,
                     CheckFlavor::kEagerNoCompensation, config_),
            cost_model_);
        ++stats_.ecwc;
      }
      if (config_.enable_lc) {
        child = WrapCheckMat(child,
                             MakeSpec(range, edge_set, CheckFlavor::kLazy,
                                      config_),
                             cost_model_);
        ++stats_.lc;
      }
      return;
    }

    // NLJN outer without a materialization: LCEM and/or ECB (Sections 3.2,
    // 3.3). ECB uses the bounded-buffer BUFCHECK operator (Figure 8/10);
    // coupling LCEM above ECB lets the eager check stop a runaway
    // materialization early while the completed TEMP stays reusable.
    if (node->kind == PlanOpKind::kNljn && slot == 0 &&
        (config_.enable_lcem || config_.enable_ecb)) {
      // Risk control: skip the artificial LCEM materialization when, per
      // the estimates, it would cost a non-trivial share of the whole
      // plan. ECB is exempt: its buffer is bounded by the check range.
      const bool lcem_fits =
          config_.enable_lcem &&
          cost_model_.TempCost(child->card) <=
              config_.lcem_budget_fraction * std::max(1.0, plan_cost_);
      if (!lcem_fits && !config_.enable_ecb) return;
      std::shared_ptr<PlanNode> wrapped = child;
      if (config_.enable_ecb) {
        auto buf = std::make_shared<PlanNode>();
        buf->kind = PlanOpKind::kBufCheck;
        buf->set = wrapped->set;
        buf->card = wrapped->card;
        buf->op_cost = cost_model_.CheckCost(wrapped->card);
        buf->cost = wrapped->cost + buf->op_cost;
        buf->check =
            MakeSpec(range, edge_set, CheckFlavor::kEagerBuffered, config_);
        buf->children = {std::move(wrapped)};
        buf->child_validity.resize(1);
        wrapped = std::move(buf);
        ++stats_.ecb;
      }
      if (lcem_fits) {
        wrapped = WrapCheckMat(
            WrapTemp(std::move(wrapped), cost_model_),
            MakeSpec(range, edge_set, CheckFlavor::kLazyEagerMat, config_),
            cost_model_);
        ++stats_.lcem;
      }
      child = std::move(wrapped);
      return;
    }

    // ECDC: pipelined streaming checks above join children in SPJ queries.
    if (config_.enable_ecdc && spj_ && child->set != 0 &&
        (child->kind == PlanOpKind::kNljn ||
         child->kind == PlanOpKind::kHsjn ||
         child->kind == PlanOpKind::kMgjn)) {
      child = WrapCheck(
          child,
          MakeSpec(range, edge_set, CheckFlavor::kEagerDeferredComp,
                   config_),
          cost_model_);
      ++stats_.ecdc;
    }
  }

  const PopConfig& config_;
  const CostModel& cost_model_;
  const bool spj_;
  const double plan_cost_;
  PlacementStats stats_;
};

/// Wraps the topmost canonical (set != 0) node reachable through
/// single-child post-join operators with `wrap`.
void WrapTopCanonical(
    std::shared_ptr<PlanNode>* root,
    const std::function<std::shared_ptr<PlanNode>(std::shared_ptr<PlanNode>)>&
        wrap) {
  std::shared_ptr<PlanNode>* slot = root;
  while ((*slot)->set == 0 && !(*slot)->children.empty()) {
    slot = &(*slot)->children[0];
  }
  *slot = wrap(*slot);
}

}  // namespace

PlacementStats PlaceCheckpoints(std::shared_ptr<PlanNode>* root,
                                const PopConfig& config,
                                const CostModel& cost_model,
                                bool query_is_spj) {
  if ((*root)->cost < config.min_plan_cost_for_checks) {
    return PlacementStats{};
  }
  Placer placer(config, cost_model, query_is_spj, (*root)->cost);
  placer.Walk(root->get());
  PlacementStats stats = placer.stats();

  if (config.work_bound_factor > 0) {
    // Extension (Section 8): guard the whole pipeline with a work budget.
    const double budget = config.work_bound_factor * (*root)->cost;
    WrapTopCanonical(root, [budget](std::shared_ptr<PlanNode> child) {
      auto guard = std::make_shared<PlanNode>();
      guard->kind = PlanOpKind::kWorkBound;
      guard->set = child->set;
      guard->card = child->card;
      guard->cost = child->cost;
      guard->work_budget = budget;
      guard->children = {std::move(child)};
      guard->child_validity.resize(1);
      return guard;
    });
    ++stats.work_bound;
  }

  const bool needs_rid_track =
      (config.enable_ecdc && query_is_spj && stats.ecdc > 0) ||
      (config.work_bound_factor > 0 && query_is_spj);
  if (needs_rid_track) {
    // Track returned rows for deferred compensation.
    WrapTopCanonical(root, [](std::shared_ptr<PlanNode> child) {
      auto track = std::make_shared<PlanNode>();
      track->kind = PlanOpKind::kRidTrack;
      track->set = child->set;
      track->card = child->card;
      track->cost = child->cost;
      track->children = {std::move(child)};
      track->child_validity.resize(1);
      return track;
    });
  }
  return stats;
}

std::vector<PlanNode*> CollectChecks(PlanNode* root) {
  std::vector<PlanNode*> out;
  if (root->check.enabled) out.push_back(root);
  for (const auto& child : root->children) {
    std::vector<PlanNode*> sub = CollectChecks(child.get());
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void InsertCompensation(std::shared_ptr<PlanNode>* root) {
  WrapTopCanonical(root, [](std::shared_ptr<PlanNode> child) {
    auto comp = std::make_shared<PlanNode>();
    comp->kind = PlanOpKind::kAntiComp;
    comp->set = child->set;
    comp->card = child->card;
    comp->cost = child->cost;
    comp->children = {std::move(child)};
    comp->child_validity.resize(1);
    return comp;
  });
}

}  // namespace popdb
