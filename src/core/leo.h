#ifndef POPDB_CORE_LEO_H_
#define POPDB_CORE_LEO_H_

#include <map>
#include <mutex>
#include <string>

#include "core/feedback.h"
#include "opt/query.h"

namespace popdb {

/// Cross-query cardinality memory in the spirit of LEO, DB2's learning
/// optimizer [SLM+01] — the combination the paper names as future work
/// ("Learning for the Future", Section 7). POP's feedback normally dies
/// with the query; this store keys it by a canonical subplan signature
/// (table names, predicates with bound literals, join predicates) so the
/// *next* compilation of a structurally identical subplan starts from
/// actual cardinalities instead of estimates.
///
/// Usage:
///   QueryFeedbackStore store;
///   executor.set_cross_query_store(&store);
///   executor.Execute(q);   // May re-optimize; actuals absorbed.
///   executor.Execute(q);   // Plans with the learned cardinalities.
///
/// Thread safe: the query-service runtime shares one store across all
/// worker threads so every query benefits from every other query's
/// learning; Absorb/Seed serialize on an internal mutex.
class QueryFeedbackStore {
 public:
  QueryFeedbackStore() = default;
  QueryFeedbackStore(const QueryFeedbackStore&) = delete;
  QueryFeedbackStore& operator=(const QueryFeedbackStore&) = delete;

  /// Canonical, query-independent signature of the subplan joining `set`:
  /// per-table predicate lists (parameter markers resolved to their bound
  /// literals) and the join predicates inside `set`, all order-normalized.
  static std::string SubplanSignature(const QuerySpec& query, TableSet set);

  /// Learns every entry of `feedback` under the query's signatures. Bumps
  /// the feedback epoch when any learned cardinality actually changed.
  void Absorb(const QuerySpec& query, const FeedbackMap& feedback);

  /// Pre-seeds `out` with everything known about the query's subplans.
  void Seed(const QuerySpec& query, FeedbackCache* out) const;

  /// Feedback epoch: total count of estimate-affecting changes — harvested
  /// feedback that moved a learned cardinality, plus every out-of-band
  /// BumpEpoch(). Monotone; plan-cache entries installed at an older epoch
  /// are suspect.
  int64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_ + external_epoch_;
  }

  /// Out-of-band slice of the epoch: stats refreshes, matview or index
  /// create/drop — world changes that alter cardinality estimates without
  /// flowing through Absorb(). The plan cache treats any change here as a
  /// hard invalidation (content changes are covered by feedback digests).
  int64_t external_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return external_epoch_;
  }

  /// Signals an out-of-band estimate change (RUNSTATS ran, a matview was
  /// created or dropped, data was bulk-loaded): bypasses every cached plan
  /// installed before the bump.
  void BumpEpoch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++external_epoch_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(store_.size());
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!store_.empty()) ++epoch_;
    store_.clear();
  }

  /// Point-in-time copy of everything learned, keyed by subplan
  /// signature. Differential tests compare stores across execution modes
  /// (e.g. serial vs morsel-parallel) entry by entry.
  std::map<std::string, CardFeedback> Dump() const {
    std::lock_guard<std::mutex> lock(mu_);
    return store_;
  }

  /// Seed() calls made (one per query compilation that consulted the
  /// store) and how many of them found at least one learned cardinality —
  /// the service's feedback-cache hit rate.
  int64_t seed_lookups() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seed_lookups_;
  }
  int64_t seed_hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seed_hits_;
  }
  /// Total learned cardinalities handed out across all Seed() calls.
  int64_t seeded_cards() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seeded_cards_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, CardFeedback> store_;
  int64_t epoch_ = 0;           ///< Content-changing Absorb()/Clear() count.
  int64_t external_epoch_ = 0;  ///< BumpEpoch() count.
  mutable int64_t seed_lookups_ = 0;
  mutable int64_t seed_hits_ = 0;
  mutable int64_t seeded_cards_ = 0;
};

}  // namespace popdb

#endif  // POPDB_CORE_LEO_H_
