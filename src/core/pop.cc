#include "core/pop.h"

#include <chrono>

#include "common/span.h"
#include "common/string_util.h"

namespace popdb {

namespace {
Status CancelledStatus(const CancelToken& token, const std::string& name) {
  if (token.reason() == CancelReason::kDeadline) {
    return Status::DeadlineExceeded("query '" + name +
                                    "' exceeded its deadline");
  }
  return Status::Cancelled("query '" + name + "' was cancelled");
}

/// 64-bit FNV-1a over a byte string (config fingerprinting).
uint64_t FnvHash(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProgressiveExecutor::ProgressiveExecutor(const Catalog& catalog,
                                         OptimizerConfig opt_config,
                                         PopConfig pop_config)
    : catalog_(catalog),
      optimizer_(catalog, std::move(opt_config)),
      pop_config_(std::move(pop_config)) {}

std::string ProgressiveExecutor::PlanCacheKey(const QuerySpec& query) const {
  const OptimizerConfig& cfg = optimizer_.config();
  const CostParams& c = cfg.cost;
  const EstimatorConfig& e = cfg.estimator;
  const ValidityConfig& v = pop_config_.validity;
  const PopConfig& p = pop_config_;
  // Every knob the optimizer (or the validity analysis whose ranges the
  // cached skeleton carries) reads; two executors differing in any of them
  // must never share an entry. Placement knobs are included too: entries
  // also carry the checkpoint-placed plan, which depends on them.
  const std::string knobs = StrFormat(
      "%d%d%d%d|%g|%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d|"
      "%g,%g,%g,%g,%d|%d,%g,%g,%g,%g|%d%d%d%d%d%d%d,%g,%g,%g,%d,%g,%d",
      cfg.methods.enable_nljn ? 1 : 0, cfg.methods.enable_hsjn ? 1 : 0,
      cfg.methods.enable_mgjn ? 1 : 0, cfg.methods.consider_matviews ? 1 : 0,
      cfg.methods.volatile_mode_bias, c.mem_rows, c.scan_per_row,
      c.mv_scan_per_row, c.temp_per_row, c.hash_build_per_row,
      c.hash_probe_per_row, c.partition_per_row, c.sort_per_compare,
      c.sort_merge_pass_per_row, c.mgjn_per_row, c.nljn_outer_per_row,
      c.nljn_probe_per_match, c.nljn_scan_per_inner_row, c.agg_per_row,
      c.check_per_row, c.hash_fanout, e.default_eq_selectivity,
      e.default_range_selectivity, e.default_like_selectivity,
      e.default_join_selectivity, e.histogram_buckets, v.max_iterations,
      v.probe_step, v.divergence_jump, v.damping, v.max_card,
      p.enable_lc ? 1 : 0, p.enable_lcem ? 1 : 0, p.enable_ecb ? 1 : 0,
      p.enable_ecwc ? 1 : 0, p.enable_ecdc ? 1 : 0,
      p.require_narrowed_range ? 1 : 0, p.observe_only ? 1 : 0,
      p.min_plan_cost_for_checks, p.check_safety_factor,
      p.lcem_budget_fraction, p.max_reopts, p.work_bound_factor,
      p.min_assumptions_for_checks);
  return QueryCacheSignature(query) +
         StrFormat("|cfg:%016llx",
                   static_cast<unsigned long long>(FnvHash(knobs)));
}

Result<OptimizedPlan> ProgressiveExecutor::Plan(
    const QuerySpec& query) const {
  const CostModel cost_model(optimizer_.config().cost);
  ValidityRangeAnalyzer analyzer(cost_model, pop_config_.validity);
  return optimizer_.Optimize(query, nullptr, nullptr, &analyzer);
}

Result<std::vector<Row>> ProgressiveExecutor::Execute(
    const QuerySpec& query, ExecutionStats* stats) {
  return Run(query, /*pop_enabled=*/true, stats);
}

Result<std::vector<Row>> ProgressiveExecutor::ExecuteStatic(
    const QuerySpec& query, ExecutionStats* stats) {
  return Run(query, /*pop_enabled=*/false, stats);
}

std::vector<EdgeObservation> CollectEdgeObservations(const ExecContext& ctx,
                                                     const BuiltPlan& built) {
  std::vector<EdgeObservation> out;
  // Materialized intermediate results know their exact cardinality when
  // complete, a lower bound otherwise.
  for (Operator* op : ctx.materializers) {
    HarvestedResult info;
    if (!op->HarvestInfo(&info)) continue;
    out.push_back({info.table_set, static_cast<double>(info.count),
                   info.complete});
  }
  // Every operator that ran to completion knows its exact output
  // cardinality; partially executed ones supply lower bounds.
  for (const auto& [set, op] : built.edges) {
    if (op->eof_seen()) {
      out.push_back({set, static_cast<double>(op->rows_produced()), true});
    } else if (op->rows_produced() > 0) {
      out.push_back({set, static_cast<double>(op->rows_produced()), false});
    }
  }
  // The failing check itself.
  if (ctx.reopt.triggered) {
    out.push_back({ctx.reopt.edge_set,
                   static_cast<double>(ctx.reopt.observed_rows),
                   ctx.reopt.exact});
  }
  return out;
}

void ProgressiveExecutor::Harvest(const ExecContext& ctx,
                                  const BuiltPlan& built,
                                  bool compensation_present,
                                  ExecutionStats* stats) {
  TRACE_SPAN("harvest_feedback", "pop");
  // Materialized intermediate rows become temporary MVs when complete and
  // reuse is on (Section 2.3; the prototype reuses TEMP and SORT results).
  for (Operator* op : ctx.materializers) {
    HarvestedResult info;
    if (!op->HarvestInfo(&info)) continue;
    if (info.complete && pop_config_.reuse_matviews && info.rows != nullptr) {
      matviews_.Register(info.table_set, *info.rows, info.sorted_positions);
      TRACE_INSTANT_ARG("matview_registered", "pop", "rows", info.count);
      if (stats != nullptr) stats->mv_rows_harvested += info.count;
    }
  }
  // Cardinality observations: materializer counts, completed/partial plan
  // edges, and the failing check. With compensation in the plan, counts
  // above the anti-join are not true subplan cardinalities, so the builder
  // excluded those edges.
  (void)compensation_present;
  for (const EdgeObservation& obs : CollectEdgeObservations(ctx, built)) {
    if (obs.exact) {
      feedback_.RecordExact(obs.set, obs.rows);
    } else {
      feedback_.RecordLowerBound(obs.set, obs.rows);
    }
  }
}

Result<std::vector<Row>> ProgressiveExecutor::Run(const QuerySpec& query,
                                                  bool pop_enabled,
                                                  ExecutionStats* stats) {
  feedback_.Clear();
  matviews_.Clear();
  memo_.Reset();
  if (pop_enabled && cross_query_store_ != nullptr) {
    cross_query_store_->Seed(query, &feedback_);
  }
  // The memo persists across this query's re-optimization attempts only;
  // null disables incremental reuse (from-scratch DP each attempt).
  IncrementalMemo* memo =
      pop_enabled && pop_config_.incremental_reopt ? &memo_ : nullptr;

  const CostModel cost_model(optimizer_.config().cost);
  const bool query_is_spj = !query.has_aggregation();
  const int max_attempts = pop_enabled ? pop_config_.max_reopts + 1 : 1;

  // Plan-cache inputs for attempt 0 (re-optimization attempts carry
  // execution-scoped feedback and matviews, so they never consult the
  // cache). Computed lazily below inside the attempt-0 branch.
  const bool use_plan_cache = pop_enabled && plan_cache_ != nullptr;
  const std::string cache_key =
      use_plan_cache ? PlanCacheKey(query) : std::string();

  std::vector<Row> result;
  std::vector<Row> returned_so_far;  // Canonical rows (ECDC compensation).
  // One pinned-snapshot registry for the whole execution: every attempt
  // (and every operator within one) reads the same frozen table versions,
  // so re-optimization compensation and harvested feedback stay consistent
  // while concurrent writers publish new versions.
  TableSnapshotSet snapshots;
  const double t_begin = NowMs();

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancel_token_ != nullptr && cancel_token_->Expired()) {
      return CancelledStatus(*cancel_token_, query.name());
    }
    AttemptInfo info;
    const double t_opt = NowMs();

    ValidityRangeAnalyzer analyzer(cost_model, pop_config_.validity);
    const FeedbackMap feedback_snapshot = feedback_.Snapshot();

    std::shared_ptr<PlanNode> root;
    uint64_t cache_digest = 0;
    int64_t cache_external_epoch = 0;
    int64_t cache_catalog_version = 0;
    bool placement_from_cache = false;
    const bool consult_cache = use_plan_cache && attempt == 0;
    if (consult_cache) {
      cache_digest = DigestFeedback(feedback_snapshot);
      cache_external_epoch = cross_query_store_ != nullptr
                                 ? cross_query_store_->external_epoch()
                                 : 0;
      // Captured once: Install/InstallPlacement below must gate on the
      // same version the lookup (and the optimization between them) saw.
      // Re-reading it would let a concurrent stats fold tag a plan chosen
      // under the old statistics with the new version, serving a stale
      // placement to the next submission.
      cache_catalog_version = catalog_.stats_version();
      PlanCache::LookupResult cached = plan_cache_->Lookup(
          cache_key, cache_external_epoch, cache_catalog_version,
          cache_digest, feedback_snapshot);
      if (stats != nullptr) {
        stats->plan_cache = cached.outcome;
        stats->plan_cache_age_ms = cached.age_ms;
      }
      if (!cached.hit() && cached.outcome == PlanCacheOutcome::kMissStale &&
          memo != nullptr && cached.stale_plan != nullptr) {
        // Near miss: the signature matched but the feedback digest moved.
        // The stale skeleton's subplans untouched by the feedback delta are
        // still the DP best plans for their table sets, so they warm-start
        // the memo and the optimization below only recomputes the rest.
        memo->SeedFromSkeleton(*cached.stale_plan, cached.stale_feedback,
                               QueryMemoFingerprint(query));
        if (stats != nullptr) ++stats->memo_warm_starts;
      }
      if (cached.outcome == PlanCacheOutcome::kHit && memo != nullptr &&
          cached.plan != nullptr) {
        // An exact-hit skeleton is bit-identical to what fresh DP would
        // produce under the current snapshot (that is the hit guarantee),
        // so it seeds the memo too: a CHECK violation later in this query
        // re-optimizes incrementally instead of falling back to full DP.
        // Validity hits do NOT qualify — their skeleton was chosen under
        // different feedback.
        memo->SeedFromSkeleton(*cached.plan, feedback_snapshot,
                               QueryMemoFingerprint(query));
      }
      if (cached.hit()) {
        if (cached.placed_plan != nullptr) {
          // Exact hit with a recorded placement: both DP enumeration and
          // the placement pass reduce to one clone.
          root = cached.placed_plan->Clone();
          placement_from_cache = true;
          info.checks.lc = cached.placed_checks.lc;
          info.checks.lcem = cached.placed_checks.lcem;
          info.checks.ecb = cached.placed_checks.ecb;
          info.checks.ecwc = cached.placed_checks.ecwc;
          info.checks.ecdc = cached.placed_checks.ecdc;
          info.checks.work_bound = cached.placed_checks.work_bound;
        } else {
          // The skeleton (with its validity ranges) is exactly what a
          // fresh optimization would produce; clone it and skip DP
          // enumeration.
          root = cached.plan->Clone();
        }
        info.candidates = cached.candidates;
      }
    }
    if (root == nullptr) {
      Result<OptimizedPlan> planned = [&] {
        TRACE_SPAN("optimize", "pop", "attempt", attempt);
        return optimizer_.Optimize(
            query, feedback_snapshot.empty() ? nullptr : &feedback_snapshot,
            matviews_.empty() ? nullptr : &matviews_.views(),
            pop_enabled ? &analyzer : nullptr, memo);
      }();
      if (!planned.ok()) return planned.status();
      root = planned.value().root;
      info.candidates = planned.value().candidates;
      if (stats != nullptr) {
        stats->memo_entries_reused += planned.value().memo_reused;
        stats->memo_entries_invalidated += planned.value().memo_invalidated;
      }
      if (consult_cache) {
        // Install the pre-checkpoint skeleton under the same gating values
        // the lookup used, so the next identical submission hits.
        plan_cache_->Install(cache_key, root->Clone(), cache_external_epoch,
                             cache_catalog_version, cache_digest,
                             planned.value().candidates,
                             planned.value().est_cost,
                             planned.value().est_card, feedback_snapshot);
      }
    }

    // The last permitted attempt runs without checkpoints so the query
    // always terminates (Section 7).
    const bool place_checks = pop_enabled && attempt < pop_config_.max_reopts;
    if (place_checks && !placement_from_cache) {
      {
        TRACE_SPAN("place_checkpoints", "pop");
        info.checks =
            PlaceCheckpoints(&root, pop_config_, cost_model, query_is_spj);
      }
      if (consult_cache) {
        // Placement is deterministic given the skeleton and the placement
        // knobs (both pinned by the cache key), so attach the placed plan
        // to the entry: the next identical submission skips this pass too.
        PlacedCheckCounts counts;
        counts.lc = info.checks.lc;
        counts.lcem = info.checks.lcem;
        counts.ecb = info.checks.ecb;
        counts.ecwc = info.checks.ecwc;
        counts.ecdc = info.checks.ecdc;
        counts.work_bound = info.checks.work_bound;
        plan_cache_->InstallPlacement(cache_key, root->Clone(),
                                      cache_external_epoch,
                                      cache_catalog_version, cache_digest,
                                      counts);
      }
    }
    if (!returned_so_far.empty()) {
      InsertCompensation(&root);
    }
    if (plan_hook_) plan_hook_(root.get(), attempt);
    info.plan_text = root->ToString();
    info.optimize_ms = NowMs() - t_opt;

    const ParallelPolicy parallel =
        task_runner_ != nullptr ? parallel_ : ParallelPolicy{};
    ExecutorBuilder builder(catalog_, query, &returned_so_far,
                            pop_config_.reuse_hsjn_builds, parallel,
                            &snapshots);
    Result<BuiltPlan> built = [&] {
      TRACE_SPAN("build_executor", "pop");
      return builder.Build(*root);
    }();
    if (!built.ok()) return built.status();

    ExecContext ctx;
    ctx.params = query.params();
    ctx.mem_rows = static_cast<int64_t>(optimizer_.config().cost.mem_rows);
    ctx.cancel = cancel_token_;
    // Vectorized execution is independent of the task runner: the batch
    // size comes from the stored policy (parallel_), not the runner-gated
    // copy, so batches stay on for serial executions and batch_rows = 1
    // forces the row engine even under a runner.
    ctx.batch_rows = parallel_.batch_rows;
    if (parallel.enabled()) {
      ctx.tasks = task_runner_;
      ctx.dop = parallel.dop;
    }

    const double t_exec = NowMs();
    std::vector<Row> attempt_rows;
    const ExecStatus status = [&] {
      TRACE_SPAN("execute_attempt", "pop", "attempt", attempt);
      return RunToCompletion(built.value().root.get(), &ctx, &attempt_rows);
    }();
    info.execute_ms = NowMs() - t_exec;
    info.work = ctx.work;
    info.rows_returned = static_cast<int64_t>(attempt_rows.size());
    if (stats != nullptr) {
      // The tree is closed; its counters are final. Snapshot before the
      // operators are destroyed at the end of this iteration.
      info.profile = ProfileOperatorTree(*built.value().root);
      info.has_profile = true;
    }

    if (stats != nullptr) {
      stats->total_work += ctx.work;
      stats->morsels_dispatched += ctx.morsels_dispatched;
      stats->parallel_work += ctx.parallel_work;
      stats->check_events.insert(stats->check_events.end(),
                                 ctx.check_events.begin(),
                                 ctx.check_events.end());
    }

    // Rows pipelined to the application are final; compensation in later
    // attempts prevents duplicates.
    result.insert(result.end(), attempt_rows.begin(), attempt_rows.end());
    returned_so_far.insert(returned_so_far.end(), ctx.returned_rows.begin(),
                           ctx.returned_rows.end());

    if (status == ExecStatus::kError) {
      return Status::Internal("execution failed: " + ctx.error);
    }
    if (status == ExecStatus::kCancelled) {
      POPDB_DCHECK(cancel_token_ != nullptr);
      if (stats != nullptr) {
        stats->attempts.push_back(std::move(info));
        stats->total_ms = NowMs() - t_begin;
      }
      return CancelledStatus(*cancel_token_, query.name());
    }
    if (status == ExecStatus::kReoptimize) {
      POPDB_DCHECK(ctx.reopt.triggered);
      TRACE_INSTANT_ARG("check_fired", "pop", "observed_rows",
                        ctx.reopt.observed_rows);
      info.reoptimized = true;
      info.signal = ctx.reopt;
      Harvest(ctx, built.value(), !returned_so_far.empty(), stats);
      if (stats != nullptr) {
        ++stats->reopts;
        stats->attempts.push_back(std::move(info));
      }
      continue;
    }
    // kEof: done. Apply LIMIT (after any ORDER BY: rows arrive sorted).
    if (query.limit() >= 0 &&
        static_cast<int64_t>(result.size()) > query.limit()) {
      result.resize(static_cast<size_t>(query.limit()));
    }
    if (pop_enabled && cross_query_store_ != nullptr) {
      // Completed edges carry exact cardinalities worth remembering even
      // when no check fired.
      for (const auto& [set, op] : built.value().edges) {
        if (op->eof_seen()) {
          feedback_.RecordExact(set,
                                static_cast<double>(op->rows_produced()));
        }
      }
      cross_query_store_->Absorb(query, feedback_.Snapshot());
    }
    if (stats != nullptr) {
      stats->attempts.push_back(std::move(info));
      stats->total_ms = NowMs() - t_begin;
      stats->result_rows = static_cast<int64_t>(result.size());
    }
    matviews_.Clear();  // End-of-query cleanup of temporary MVs.
    return result;
  }
  return Status::Internal("re-optimization loop did not terminate");
}

Result<std::string> ProgressiveExecutor::ExplainAnalyze(
    const QuerySpec& query, ExecutionStats* stats) {
  ExecutionStats local;
  ExecutionStats* out = stats != nullptr ? stats : &local;
  Result<std::vector<Row>> rows = Execute(query, out);
  if (!rows.ok()) return rows.status();
  return RenderExplainAnalyze(*out);
}

std::string RenderExplainAnalyze(const ExecutionStats& stats) {
  std::string out;
  for (size_t i = 0; i < stats.attempts.size(); ++i) {
    const AttemptInfo& a = stats.attempts[i];
    out += StrFormat("=== Attempt %d  (optimize %.3fms, execute %.3fms, "
                     "work=%lld, rows=%lld)\n",
                     static_cast<int>(i + 1), a.optimize_ms, a.execute_ms,
                     static_cast<long long>(a.work),
                     static_cast<long long>(a.rows_returned));
    if (a.has_profile) {
      out += RenderProfileText(a.profile);
    } else {
      out += a.plan_text;
    }
    if (a.reoptimized) {
      out += StrFormat(
          "--> CHECK fired: %s on edge set %llu, observed %lld rows "
          "(%s) outside [%.4g, %.4g]; re-optimizing\n",
          CheckFlavorName(a.signal.flavor),
          static_cast<unsigned long long>(a.signal.edge_set),
          static_cast<long long>(a.signal.observed_rows),
          a.signal.exact ? "exact" : "lower bound", a.signal.check_lo,
          a.signal.check_hi);
    }
  }
  out += StrFormat("=== Done: %d attempt(s), %d re-optimization(s), "
                   "%lld rows, %.3fms total\n",
                   static_cast<int>(stats.attempts.size()), stats.reopts,
                   static_cast<long long>(stats.result_rows), stats.total_ms);
  return out;
}

}  // namespace popdb
