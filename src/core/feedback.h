#ifndef POPDB_CORE_FEEDBACK_H_
#define POPDB_CORE_FEEDBACK_H_

#include <string>

#include "opt/cardinality.h"

namespace popdb {

/// Accumulates actual cardinalities observed while a query executes, keyed
/// by subplan table set, and feeds them into re-optimization (paper
/// Section 2: "actual cardinalities measured during the initial run help
/// the re-optimization step avoid the same mistake").
///
/// Exact values dominate lower bounds; repeated observations keep the most
/// informative value (exact wins; otherwise the largest lower bound).
class FeedbackCache {
 public:
  /// Records the true cardinality of the subplan joining `set`.
  void RecordExact(TableSet set, double card);

  /// Records that the subplan joining `set` produces at least `card` rows
  /// (from an eager check that fired before exhausting its input).
  void RecordLowerBound(TableSet set, double card);

  const FeedbackMap& map() const { return map_; }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.clear(); }

  std::string ToString() const;

 private:
  FeedbackMap map_;
};

}  // namespace popdb

#endif  // POPDB_CORE_FEEDBACK_H_
