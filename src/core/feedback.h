#ifndef POPDB_CORE_FEEDBACK_H_
#define POPDB_CORE_FEEDBACK_H_

#include <mutex>
#include <string>

#include "opt/cardinality.h"

namespace popdb {

/// Accumulates actual cardinalities observed while a query executes, keyed
/// by subplan table set, and feeds them into re-optimization (paper
/// Section 2: "actual cardinalities measured during the initial run help
/// the re-optimization step avoid the same mistake").
///
/// Exact values dominate lower bounds; repeated observations keep the most
/// informative value (exact wins; otherwise the largest lower bound).
///
/// Thread safe: the runtime's shared-feedback mode can have one worker
/// recording observations while another plans, so mutations and reads take
/// the internal mutex, and Snapshot() returns a point-in-time copy instead
/// of a reference to internal state.
class FeedbackCache {
 public:
  /// Records the true cardinality of the subplan joining `set`.
  void RecordExact(TableSet set, double card);

  /// Records that the subplan joining `set` produces at least `card` rows
  /// (from an eager check that fired before exhausting its input).
  void RecordLowerBound(TableSet set, double card);

  /// Consistent point-in-time copy of the accumulated feedback.
  FeedbackMap Snapshot() const;

  /// Monotone change counter: bumped by every mutation (Record*/Clear)
  /// that can move a cardinality estimate. Consumers (e.g. the plan
  /// cache's staleness accounting) compare epochs instead of snapshots to
  /// detect that feedback moved.
  int64_t epoch() const;

  bool empty() const;
  void Clear();

  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  FeedbackMap map_;
  int64_t epoch_ = 0;
};

}  // namespace popdb

#endif  // POPDB_CORE_FEEDBACK_H_
