#ifndef POPDB_CORE_MATVIEW_H_
#define POPDB_CORE_MATVIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "opt/enumerator.h"

namespace popdb {

/// Owns the temporary materialized views created from intermediate results
/// when a CHECK fires (paper Section 2.3). Each view is the complete
/// materialized output of the canonical subplan joining `set` (rows are in
/// the engine's canonical layout, so any re-optimized plan can consume
/// them), with its exact cardinality available as catalog statistics for
/// the re-optimization.
///
/// Views are scoped to one progressive execution: the controller clears the
/// registry when the query completes (the paper's "cleanup" step).
class MatViewRegistry {
 public:
  MatViewRegistry() = default;
  MatViewRegistry(const MatViewRegistry&) = delete;
  MatViewRegistry& operator=(const MatViewRegistry&) = delete;

  /// Registers (or replaces) the materialized result for `set`, copying
  /// `rows`. `sorted_positions` records an ascending sort order the rows
  /// already have (empty if unsorted).
  void Register(TableSet set, std::vector<Row> rows,
                std::vector<int> sorted_positions = {});

  /// Views in the form the optimizer consumes. Row pointers stay valid
  /// until Clear() or a Register() replacing the same set.
  const std::vector<AvailableMatView>& views() const { return views_; }

  bool empty() const { return views_.empty(); }
  int64_t total_rows() const;

  /// Monotone change counter bumped by every create (Register) and drop
  /// (Clear of a non-empty registry): any bump means the set of reusable
  /// materialized results — and with it the optimizer's choices — changed.
  int64_t epoch() const { return epoch_; }

  /// Drops all temporary views (end-of-query cleanup).
  void Clear();

 private:
  struct Stored {
    std::string name;
    TableSet set = 0;
    std::vector<Row> rows;
    std::vector<int> sorted_positions;
  };

  void RebuildViews();

  std::vector<std::unique_ptr<Stored>> stored_;
  std::vector<AvailableMatView> views_;
  int64_t epoch_ = 0;
};

}  // namespace popdb

#endif  // POPDB_CORE_MATVIEW_H_
