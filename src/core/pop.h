#ifndef POPDB_CORE_POP_H_
#define POPDB_CORE_POP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/executor_builder.h"
#include "core/explain.h"
#include "core/feedback.h"
#include "core/leo.h"
#include "core/matview.h"
#include "core/placement.h"
#include "core/validity.h"
#include "opt/optimizer.h"
#include "opt/plan_cache.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb {

/// Per-shard slice of one distributed attempt (filled by the scatter-gather
/// coordinator; empty for local executions).
struct ShardAttemptInfo {
  int shard = -1;
  double execute_ms = 0.0;  ///< Scatter start to this shard's completion.
  int64_t rows = 0;         ///< Rows streamed back (pre-violation included).
  std::string outcome;      ///< "ok", "reoptimize", "cancelled", ...
};

/// Diagnostics for one optimize+execute step of a progressive execution.
struct AttemptInfo {
  std::string plan_text;
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  int64_t work = 0;             ///< Work units spent in this attempt.
  int64_t candidates = 0;       ///< Optimizer candidates considered.
  PlacementStats checks;        ///< Checkpoints placed for this attempt.
  bool reoptimized = false;     ///< True if a CHECK fired.
  ReoptSignal signal;           ///< Valid when reoptimized.
  int64_t rows_returned = 0;    ///< Rows pipelined to the app this attempt.
  /// Post-execution snapshot of the operator tree with the optimizer's
  /// estimates next to the recorded actuals (EXPLAIN ANALYZE source).
  PlanProfileNode profile;
  bool has_profile = false;
  /// Distributed attempts only: per-shard timing/row/outcome breakdown.
  std::vector<ShardAttemptInfo> shards;
};

/// Diagnostics for a full progressive execution.
struct ExecutionStats {
  std::vector<AttemptInfo> attempts;
  double total_ms = 0.0;
  int64_t total_work = 0;
  int64_t result_rows = 0;
  int reopts = 0;
  int64_t mv_rows_harvested = 0;
  /// Morsel-parallel execution (set_parallel): morsels run across all
  /// attempts and the work units spent inside morsel tasks.
  /// parallel_work / total_work is the query's parallel fraction.
  int64_t morsels_dispatched = 0;
  int64_t parallel_work = 0;
  std::vector<CheckEvent> check_events;  ///< Accumulated over attempts.
  /// Plan-cache decision for the first attempt (kNone when no cache is
  /// attached or the run is non-progressive) and, on a hit, the age of the
  /// served entry.
  PlanCacheOutcome plan_cache = PlanCacheOutcome::kNone;
  double plan_cache_age_ms = 0.0;
  /// Incremental re-optimization: DP memo entries reused / discarded
  /// across all attempts, and whether a plan-cache near miss warm-started
  /// the memo from the cached skeleton.
  int64_t memo_entries_reused = 0;
  int64_t memo_entries_invalidated = 0;
  int64_t memo_warm_starts = 0;

  const AttemptInfo& last_attempt() const { return attempts.back(); }
};

/// One observed cardinality for a plan edge (subplan output), harvested
/// after an execution attempt. `exact` means the operator ran to
/// completion (EOF) so `rows` is the true cardinality; otherwise it is a
/// lower bound. This is the unit a shard ships to the coordinator so
/// cluster-level re-optimization can aggregate per-shard observations.
struct EdgeObservation {
  TableSet set = 0;
  double rows = 0.0;
  bool exact = false;
};

/// Collects every cardinality observation an executed (possibly aborted)
/// operator tree can justify: materializer counts, completed/partial plan
/// edges, and the failing check itself when one fired. Used by Harvest()
/// locally and by shard servers to export observations over the wire.
std::vector<EdgeObservation> CollectEdgeObservations(const ExecContext& ctx,
                                                     const BuiltPlan& built);

/// Progressive query executor (the paper's Figure 3 architecture): an
/// optimize → add-checkpoints → execute loop that re-optimizes whenever a
/// CHECK detects that the running plan left its validity range, feeding
/// actual cardinalities and materialized intermediate results back into
/// the next optimization, with a hard re-optimization budget and a final
/// check-free run to guarantee termination.
///
/// Example:
///   ProgressiveExecutor pop(catalog, OptimizerConfig{}, PopConfig{});
///   ExecutionStats stats;
///   Result<std::vector<Row>> rows = pop.Execute(query, &stats);
class ProgressiveExecutor {
 public:
  /// Invoked after checkpoint placement, before execution; test and
  /// benchmark hook (e.g. forcing a specific checkpoint to fail).
  using PlanHook = std::function<void(PlanNode*, int attempt)>;

  ProgressiveExecutor(const Catalog& catalog, OptimizerConfig opt_config,
                      PopConfig pop_config);

  /// Executes `query` with progressive optimization.
  Result<std::vector<Row>> Execute(const QuerySpec& query,
                                   ExecutionStats* stats = nullptr);

  /// Executes `query` the traditional way: one optimization, no
  /// checkpoints, no re-optimization (the paper's baseline).
  Result<std::vector<Row>> ExecuteStatic(const QuerySpec& query,
                                         ExecutionStats* stats = nullptr);

  /// Optimizes only (with validity-range analysis) — for plan inspection.
  Result<OptimizedPlan> Plan(const QuerySpec& query) const;

  /// Executes `query` progressively and returns the annotated plan-tree
  /// report: one section per attempt showing estimated vs. actual rows and
  /// Q-error per operator, plus why each re-optimization fired.
  Result<std::string> ExplainAnalyze(const QuerySpec& query,
                                     ExecutionStats* stats = nullptr);

  void set_plan_hook(PlanHook hook) { plan_hook_ = std::move(hook); }

  /// Optional LEO-style cross-query feedback store (Section 7 "Learning
  /// for the Future"): actual cardinalities learned during progressive
  /// executions seed the estimates of future structurally identical
  /// subplans. Not owned; may be null.
  void set_cross_query_store(QueryFeedbackStore* store) {
    cross_query_store_ = store;
  }

  /// Optional shared plan cache: when set, the first optimization of a
  /// progressive execution is preceded by a cache lookup keyed on the
  /// query's canonical signature plus this executor's optimizer-config
  /// fingerprint; a hit skips DP enumeration and goes straight to
  /// checkpoint placement over the cached skeleton, a miss installs the
  /// freshly optimized plan. Re-optimization attempts never consult the
  /// cache (their in-query feedback and matviews are execution-scoped).
  /// Not owned; may be null.
  void set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }

  /// Cooperative cancellation: when set, the token is polled during
  /// execution (and between optimization attempts); a tripped token makes
  /// Execute return Status::Cancelled or Status::DeadlineExceeded, matching
  /// the token's reason. Not owned; may be null.
  void set_cancel_token(CancelToken* token) { cancel_token_ = token; }

  /// Morsel-driven intra-query parallelism: eligible base-table scans fan
  /// out over `runner` with at most `policy.dop` workers including the
  /// query's own thread (exec/parallel.h). Execution results, CHECK
  /// decisions, and harvested feedback are identical to serial execution;
  /// every task group joins inside the attempt, so re-optimization never
  /// overlaps in-flight morsel tasks. `runner` is not owned and may be
  /// null (serial).
  void set_parallel(TaskRunner* runner, ParallelPolicy policy) {
    task_runner_ = runner;
    parallel_ = policy;
  }

  const PopConfig& pop_config() const { return pop_config_; }
  const OptimizerConfig& optimizer_config() const {
    return optimizer_.config();
  }

 private:
  Result<std::vector<Row>> Run(const QuerySpec& query, bool pop_enabled,
                               ExecutionStats* stats);
  /// Plan-cache key: canonical query signature + optimizer-config
  /// fingerprint (so one cache shared across differently configured
  /// executors can never serve a plan chosen under other knobs).
  std::string PlanCacheKey(const QuerySpec& query) const;
  /// Harvests feedback and reusable intermediate results after a CHECK
  /// fired.
  void Harvest(const ExecContext& ctx, const BuiltPlan& built,
               bool compensation_present, ExecutionStats* stats);

  const Catalog& catalog_;
  Optimizer optimizer_;
  PopConfig pop_config_;
  PlanHook plan_hook_;

  FeedbackCache feedback_;
  MatViewRegistry matviews_;
  /// Persistent DP memo threaded through the attempts of one Run() (reset
  /// per query; PopConfig::incremental_reopt gates its use).
  IncrementalMemo memo_;
  QueryFeedbackStore* cross_query_store_ = nullptr;
  PlanCache* plan_cache_ = nullptr;
  CancelToken* cancel_token_ = nullptr;
  TaskRunner* task_runner_ = nullptr;
  ParallelPolicy parallel_;
};

/// Monotonic wall-clock milliseconds (benchmark helper).
double NowMs();

/// Renders the EXPLAIN ANALYZE report for a finished execution: per
/// attempt, the annotated operator tree (estimated vs. actual rows,
/// Q-error, timings) and the checkpoint that ended the attempt.
std::string RenderExplainAnalyze(const ExecutionStats& stats);

}  // namespace popdb

#endif  // POPDB_CORE_POP_H_
