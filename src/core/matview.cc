#include "core/matview.h"

#include "common/string_util.h"

namespace popdb {

void MatViewRegistry::Register(TableSet set, std::vector<Row> rows,
                               std::vector<int> sorted_positions) {
  ++epoch_;
  for (auto& stored : stored_) {
    if (stored->set == set) {
      stored->rows = std::move(rows);
      stored->sorted_positions = std::move(sorted_positions);
      RebuildViews();
      return;
    }
  }
  auto stored = std::make_unique<Stored>();
  stored->name = StrFormat("tmpmv_%zu_0x%llx", stored_.size(),
                           static_cast<unsigned long long>(set));
  stored->set = set;
  stored->rows = std::move(rows);
  stored->sorted_positions = std::move(sorted_positions);
  stored_.push_back(std::move(stored));
  RebuildViews();
}

void MatViewRegistry::RebuildViews() {
  views_.clear();
  views_.reserve(stored_.size());
  for (const auto& stored : stored_) {
    AvailableMatView view;
    view.name = stored->name;
    view.set = stored->set;
    view.card = static_cast<double>(stored->rows.size());
    view.rows = &stored->rows;
    view.sorted_positions = stored->sorted_positions;
    views_.push_back(std::move(view));
  }
}

int64_t MatViewRegistry::total_rows() const {
  int64_t total = 0;
  for (const auto& stored : stored_) {
    total += static_cast<int64_t>(stored->rows.size());
  }
  return total;
}

void MatViewRegistry::Clear() {
  if (!stored_.empty()) ++epoch_;
  stored_.clear();
  views_.clear();
}

}  // namespace popdb
