#include "core/validity.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace popdb {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double ValidityRangeAnalyzer::CostDiff(const PlanNode& winner,
                                       int winner_slot, const PlanNode& loser,
                                       int loser_slot, double card) const {
  cost_evaluations_ += 2;
  return RecostCandidateWithEdgeCard(loser, loser_slot, card, cost_model_) -
         RecostCandidateWithEdgeCard(winner, winner_slot, card, cost_model_);
}

double ValidityRangeAnalyzer::FindUpperCrossover(const PlanNode& winner,
                                                 int winner_slot,
                                                 const PlanNode& loser,
                                                 int loser_slot,
                                                 double start) const {
  double c = std::max(1.0, start);
  double curr_diff = CostDiff(winner, winner_slot, loser, loser_slot, c);
  if (curr_diff <= 0) {
    // The alternative is already no more expensive at the estimate itself;
    // the tie can flip for any increase. Conservatively do not narrow.
    return kInf;
  }
  // Modified Newton-Raphson (Figure 5): probe multiplicatively to sample the
  // gradient, extrapolate toward the root, jump when diverging, and stop as
  // soon as a cost inversion is verified.
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    const double probed = c * config_.probe_step;
    const double new_diff =
        CostDiff(winner, winner_slot, loser, loser_slot, probed);
    if (new_diff <= 0) return probed;  // Inversion verified at `probed`.
    double next;
    if (new_diff >= curr_diff) {
      // Diverging (or flat/discontinuous): jump.
      next = probed * config_.divergence_jump;
    } else {
      // Figure 5(f): card *= 1 + newDiff / (damping * (currDiff - newDiff)).
      next = probed *
             (1.0 + new_diff / (config_.damping * (curr_diff - new_diff)));
    }
    next = std::min(next, config_.max_card);
    const double next_diff =
        CostDiff(winner, winner_slot, loser, loser_slot, next);
    if (next_diff <= 0) return next;  // Inversion verified at `next`.
    if (next >= config_.max_card) break;
    c = next;
    curr_diff = next_diff;
  }
  return kInf;  // Conservative: no verified bound within the budget.
}

double ValidityRangeAnalyzer::FindLowerCrossover(const PlanNode& winner,
                                                 int winner_slot,
                                                 const PlanNode& loser,
                                                 int loser_slot,
                                                 double start) const {
  double c = std::max(1.0, start);
  double curr_diff = CostDiff(winner, winner_slot, loser, loser_slot, c);
  if (curr_diff <= 0) return 0.0;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    const double probed = c / config_.probe_step;
    if (probed < 1.0) break;  // Cardinalities below one row are meaningless.
    const double new_diff =
        CostDiff(winner, winner_slot, loser, loser_slot, probed);
    if (new_diff <= 0) return probed;
    double next;
    if (new_diff >= curr_diff) {
      next = probed / config_.divergence_jump;
    } else {
      next = probed /
             (1.0 + new_diff / (config_.damping * (curr_diff - new_diff)));
    }
    if (next < 1.0) break;
    const double next_diff =
        CostDiff(winner, winner_slot, loser, loser_slot, next);
    if (next_diff <= 0) return next;
    c = next;
    curr_diff = next_diff;
  }
  return 0.0;  // Conservative: no verified bound.
}

void ValidityRangeAnalyzer::OnPrune(PlanNode* winner, const PlanNode& loser) {
  // Match the winner's input edges with the loser's by the table set of
  // the logical subplan feeding them (commuted plans swap slots).
  for (int wslot = 0; wslot < 2; ++wslot) {
    const PlanNode* wchild = LogicalChild(*winner, wslot);
    int lslot = -1;
    for (int cand = 0; cand < 2; ++cand) {
      if (LogicalChild(loser, cand)->set == wchild->set) {
        // For self-partitions (both children over the same set, which can
        // only happen with commuted identical sets), match by slot.
        lslot = (LogicalChild(loser, 0)->set == LogicalChild(loser, 1)->set)
                    ? wslot
                    : cand;
        break;
      }
    }
    if (lslot < 0) continue;
    const double est = std::max(1.0, wchild->card);
    ValidityRange& range =
        winner->child_validity[static_cast<size_t>(wslot)];
    const double hi =
        FindUpperCrossover(*winner, wslot, loser, lslot, est);
    if (hi < range.hi) {
      range.hi = hi;
      ++ranges_narrowed_;
    }
    const double lo = FindLowerCrossover(*winner, wslot, loser, lslot, est);
    if (lo > range.lo) {
      range.lo = lo;
      ++ranges_narrowed_;
    }
  }
}

}  // namespace popdb
