#ifndef POPDB_CORE_EXECUTOR_BUILDER_H_
#define POPDB_CORE_EXECUTOR_BUILDER_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/operator.h"
#include "exec/parallel.h"
#include "opt/plan.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb {

/// An executable operator tree plus the bookkeeping the POP controller
/// needs: every table-set-producing operator, so actual cardinalities can
/// be harvested into feedback after execution.
struct BuiltPlan {
  std::unique_ptr<Operator> root;
  /// (subplan table set, operator) for every canonical-row operator.
  std::vector<std::pair<TableSet, Operator*>> edges;
  /// Hash indexes built on temporary materialized views for this plan
  /// (the re-optimizer's "index the view before reuse" decision); owned
  /// here because the views themselves live in the MatViewRegistry.
  std::vector<std::unique_ptr<HashIndex>> owned_indexes;
};

/// Translates a physical PlanNode tree into executable Volcano operators —
/// the paper's "code generator" stage, including the translation of CHECK
/// into executable code (Section 2.1c).
class ExecutorBuilder {
 public:
  /// `already_returned` backs kAntiComp nodes (may be null when the plan
  /// has none). `offer_hsjn_builds` lets hash joins expose their build
  /// sides for reuse. `parallel` (default: serial) makes the builder wrap
  /// eligible base-table scans — at least `min_parallel_rows` rows — in a
  /// MorselExchangeOp so they fan out over morsel tasks; every other
  /// operator stays in the serial tail above the exchange, which is what
  /// keeps CHECK thresholds and harvested feedback identical to serial
  /// execution. `snapshots` is the query's pinned-version registry: base
  /// tables are read through it so all operators — and all re-optimization
  /// attempts of one execution — see the same frozen data under concurrent
  /// writes; when null the builder owns a private set (one Build is still
  /// internally consistent).
  ExecutorBuilder(const Catalog& catalog, const QuerySpec& query,
                  const std::vector<Row>* already_returned,
                  bool offer_hsjn_builds, ParallelPolicy parallel = {},
                  TableSnapshotSet* snapshots = nullptr);

  Result<BuiltPlan> Build(const PlanNode& plan);

 private:
  Result<std::unique_ptr<Operator>> BuildNode(const PlanNode& node);
  /// Human-readable payload for EXPLAIN ANALYZE (table name, index use,
  /// check flavor and range, work budget).
  static std::string NodeDetail(const PlanNode& node);
  RowLayout LayoutFor(TableSet set) const;
  std::vector<ResolvedPredicate> ResolveTablePreds(
      const std::vector<int>& pred_ids) const;
  /// Join key positions: for each join pred id, the position of its column
  /// on `side_set`'s canonical layout.
  std::vector<int> ResolveKeys(const std::vector<int>& join_pred_ids,
                               TableSet side_set) const;

  const Catalog& catalog_;
  const QuerySpec& query_;
  const std::vector<Row>* already_returned_;
  bool offer_hsjn_builds_;
  ParallelPolicy parallel_;
  TableSnapshotSet owned_snapshots_;
  TableSnapshotSet* snapshots_;
  std::vector<int> widths_;
  std::vector<std::pair<TableSet, Operator*>> edges_;
  std::vector<std::unique_ptr<HashIndex>> owned_indexes_;
  /// Set once a compensation anti-join was built: counts above it are not
  /// true subplan cardinalities.
  bool suppress_edges_ = false;
};

}  // namespace popdb

#endif  // POPDB_CORE_EXECUTOR_BUILDER_H_
