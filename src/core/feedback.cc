#include "core/feedback.h"

#include <algorithm>

#include "common/string_util.h"

namespace popdb {

void FeedbackCache::RecordExact(TableSet set, double card) {
  std::lock_guard<std::mutex> lock(mu_);
  CardFeedback& fb = map_[set];
  if (fb.exact == card) return;  // No estimate moved; epoch unchanged.
  fb.exact = card;
  ++epoch_;
}

void FeedbackCache::RecordLowerBound(TableSet set, double card) {
  std::lock_guard<std::mutex> lock(mu_);
  CardFeedback& fb = map_[set];
  if (fb.exact >= 0) return;  // Exact knowledge dominates.
  if (card <= fb.lower_bound) return;
  fb.lower_bound = card;
  ++epoch_;
}

FeedbackMap FeedbackCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

int64_t FeedbackCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bool FeedbackCache::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.empty();
}

void FeedbackCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!map_.empty()) ++epoch_;
  map_.clear();
}

std::string FeedbackCache::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [set, fb] : map_) {
    if (fb.exact >= 0) {
      out += StrFormat("set=0x%llx exact=%.0f\n",
                       static_cast<unsigned long long>(set), fb.exact);
    } else {
      out += StrFormat("set=0x%llx lower_bound=%.0f\n",
                       static_cast<unsigned long long>(set), fb.lower_bound);
    }
  }
  return out;
}

}  // namespace popdb
