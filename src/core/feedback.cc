#include "core/feedback.h"

#include <algorithm>

#include "common/string_util.h"

namespace popdb {

void FeedbackCache::RecordExact(TableSet set, double card) {
  CardFeedback& fb = map_[set];
  fb.exact = card;
}

void FeedbackCache::RecordLowerBound(TableSet set, double card) {
  CardFeedback& fb = map_[set];
  if (fb.exact >= 0) return;  // Exact knowledge dominates.
  fb.lower_bound = std::max(fb.lower_bound, card);
}

std::string FeedbackCache::ToString() const {
  std::string out;
  for (const auto& [set, fb] : map_) {
    if (fb.exact >= 0) {
      out += StrFormat("set=0x%llx exact=%.0f\n",
                       static_cast<unsigned long long>(set), fb.exact);
    } else {
      out += StrFormat("set=0x%llx lower_bound=%.0f\n",
                       static_cast<unsigned long long>(set), fb.lower_bound);
    }
  }
  return out;
}

}  // namespace popdb
