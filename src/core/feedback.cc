#include "core/feedback.h"

#include <algorithm>

#include "common/string_util.h"

namespace popdb {

void FeedbackCache::RecordExact(TableSet set, double card) {
  std::lock_guard<std::mutex> lock(mu_);
  CardFeedback& fb = map_[set];
  fb.exact = card;
}

void FeedbackCache::RecordLowerBound(TableSet set, double card) {
  std::lock_guard<std::mutex> lock(mu_);
  CardFeedback& fb = map_[set];
  if (fb.exact >= 0) return;  // Exact knowledge dominates.
  fb.lower_bound = std::max(fb.lower_bound, card);
}

FeedbackMap FeedbackCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

bool FeedbackCache::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.empty();
}

void FeedbackCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::string FeedbackCache::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [set, fb] : map_) {
    if (fb.exact >= 0) {
      out += StrFormat("set=0x%llx exact=%.0f\n",
                       static_cast<unsigned long long>(set), fb.exact);
    } else {
      out += StrFormat("set=0x%llx lower_bound=%.0f\n",
                       static_cast<unsigned long long>(set), fb.lower_bound);
    }
  }
  return out;
}

}  // namespace popdb
