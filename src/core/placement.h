#ifndef POPDB_CORE_PLACEMENT_H_
#define POPDB_CORE_PLACEMENT_H_

#include <memory>
#include <vector>

#include "core/validity.h"
#include "opt/cost_model.h"
#include "opt/plan.h"

namespace popdb {

/// Configuration of progressive query optimization (checkpoint flavors,
/// risk posture, re-optimization budget). The defaults mirror the paper's
/// prototype: conservative LC + LCEM placement, eager flavors disabled,
/// TEMP/SORT results reused, hash-join builds not reused, at most three
/// re-optimizations (Section 4, Section 7).
struct PopConfig {
  bool enable_lc = true;    ///< Lazy checks above SORT/TEMP/HSJN-build.
  bool enable_lcem = true;  ///< CHECK-TEMP pairs on NLJN outers.
  bool enable_ecb = false;  ///< Eager check (under the LCEM/ECB buffer).
  bool enable_ecwc = false; ///< Eager check below materialization points.
  bool enable_ecdc = false; ///< Pipelined checks + deferred compensation.

  /// Only place a checkpoint when the validity range of its edge was
  /// actually narrowed, i.e. an alternative plan exists above the edge
  /// (Section 4's placement restriction).
  bool require_narrowed_range = true;

  /// Queries cheaper than this (estimated cost) get no checkpoints at all.
  double min_plan_cost_for_checks = 0.0;

  /// Widens check ranges to [lo/f, hi*f]; 1.0 = use validity ranges as-is.
  /// Used by the ablation study comparing against ad-hoc thresholds.
  double check_safety_factor = 1.0;

  /// Place an LCEM only when the artificial materialization is cheap: its
  /// estimated TEMP cost must not exceed this fraction of the whole plan's
  /// estimated cost (risk control; the paper materializes NLJN outers on
  /// the expectation that they are small).
  double lcem_budget_fraction = 0.05;

  /// Hard cap on re-optimizations; the final attempt runs without checks
  /// to guarantee termination (Section 7 "Ensuring Termination").
  int max_reopts = 3;

  /// Keep the DP memo alive across re-optimization attempts: a CHECK
  /// violation only invalidates memo entries whose table set contains the
  /// changed edge; everything else is reused, and plan-cache near misses
  /// warm-start the memo from the cached skeleton. Produces bit-identical
  /// plans to from-scratch enumeration (the reopt differential suite
  /// enforces this), which is why the knob is deliberately NOT part of the
  /// plan-cache key.
  bool incremental_reopt = true;

  /// Reuse completed TEMP/SORT materializations as temp MVs.
  bool reuse_matviews = true;
  /// Extension: also offer hash-join build sides for reuse (the paper's
  /// prototype does not; see Section 4).
  bool reuse_hsjn_builds = false;

  /// Record CheckEvents but never trigger (opportunity analysis, Fig. 14).
  bool observe_only = false;

  /// Extension (paper Section 8): re-optimize when the executed work
  /// exceeds `work_bound_factor` x the plan's estimated cost. 0 disables.
  /// For pipelined SPJ plans a row tracker is added so the re-run can
  /// compensate already returned rows.
  double work_bound_factor = 0.0;

  /// Extension (paper Section 4 future work): place checkpoints only on
  /// edges whose estimate used at least this many optimizer assumptions
  /// (independence multiplications, defaults for parameter markers) — a
  /// simple confidence model. 0 disables the filter.
  int min_assumptions_for_checks = 0;

  ValidityConfig validity;
};

/// Count of checkpoints inserted per flavor.
struct PlacementStats {
  int lc = 0;
  int lcem = 0;
  int ecb = 0;
  int ecwc = 0;
  int ecdc = 0;
  int work_bound = 0;

  int total() const { return lc + lcem + ecb + ecwc + ecdc; }
};

/// Post-optimization pass inserting CHECK operators into a (deep-cloned,
/// mutable) plan per the paper's placement policy (Section 4):
///   - LC above every SORT/TEMP materialization point and on hash-join
///     builds, guarded by that edge's validity range;
///   - LCEM (CHECK-TEMP pair) on the outer of every NLJN whose outer is
///     not already materialized;
///   - ECB as a streaming check under the LCEM buffer (fails during
///     materialization, before it grows beyond bounds);
///   - ECWC below materialization points;
///   - ECDC streaming checks in pipelined SPJ plans plus an INSERT(S)
///     row tracker at the top for deferred compensation.
/// `query_is_spj` gates ECDC. Returns per-flavor insertion counts.
PlacementStats PlaceCheckpoints(std::shared_ptr<PlanNode>* root,
                                const PopConfig& config,
                                const CostModel& cost_model,
                                bool query_is_spj);

/// All nodes of `root` carrying an enabled CheckSpec (CHECK nodes and
/// hash joins with build checks), in pre-order. Experiments use this to
/// force specific checkpoints to fail.
std::vector<PlanNode*> CollectChecks(PlanNode* root);

/// Inserts an anti-join compensation marker directly above the topmost
/// canonical (table-set producing) node, suppressing rows already returned
/// in earlier execution steps. The executor builder attaches the actual
/// row multiset.
void InsertCompensation(std::shared_ptr<PlanNode>* root);

}  // namespace popdb

#endif  // POPDB_CORE_PLACEMENT_H_
