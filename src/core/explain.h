#ifndef POPDB_CORE_EXPLAIN_H_
#define POPDB_CORE_EXPLAIN_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "exec/operator.h"

namespace popdb {

/// One operator of an executed plan, annotated with the optimizer's
/// estimates next to the recorded actuals — the EXPLAIN ANALYZE unit.
/// Snapshots are taken after execution (possibly an aborted attempt), so
/// `actual_rows` of an incomplete operator is a lower bound, not a
/// cardinality.
struct PlanProfileNode {
  std::string name;    ///< Operator name ("TBSCAN", "HSJN", "CHECK", ...).
  std::string detail;  ///< Human-readable payload (table, flavor, range).

  double est_rows = -1.0;  ///< Optimizer estimate; -1 = not annotated.
  double est_cost = -1.0;

  int64_t actual_rows = 0;  ///< Rows produced (exact iff `completed`).
  bool completed = false;   ///< Operator reached EOF.
  int64_t next_calls = 0;
  int64_t batches = 0;  ///< Vectorized NextBatch invocations (0 = row mode).

  double open_ms = 0.0;
  double next_ms = 0.0;
  double close_ms = 0.0;

  std::vector<PlanProfileNode> children;

  bool has_estimates() const { return est_rows >= 0.0; }

  /// Cardinality Q-error max(est/act, act/est), add-one smoothed so empty
  /// results stay finite. >= 1 by definition; -1 when the operator has no
  /// estimate or did not complete (its actual count is only a bound).
  double QError() const {
    if (!has_estimates() || !completed) return -1.0;
    const double act = static_cast<double>(actual_rows);
    const double hi = std::max(est_rows, act);
    const double lo = std::min(est_rows, act);
    return (hi + 1.0) / (lo + 1.0);
  }
};

/// Snapshots an executed operator tree (est vs. actual annotations, row
/// counts, sampled timings) into a profile tree.
PlanProfileNode ProfileOperatorTree(const Operator& root);

/// Indented per-operator text rendering (the EXPLAIN ANALYZE body):
///   HSJN [emp,dept]  est_rows=200 act_rows=200 q=1 ...
std::string RenderProfileText(const PlanProfileNode& node);

/// JSON rendering used by query traces; ProfileToJsonString wraps it for
/// standalone use.
void ProfileToJson(const PlanProfileNode& node, JsonWriter* w);
std::string ProfileToJsonString(const PlanProfileNode& node);

/// Inverse of ProfileToJson: rebuilds a profile tree from its JSON form.
/// Tolerates missing optional members (they keep their defaults) so shard
/// servers of adjacent versions interoperate; fails only on structurally
/// wrong input. Used by the coordinator to merge per-shard EXPLAIN ANALYZE
/// snapshots shipped over the wire.
bool ProfileFromJson(const JsonValue& json, PlanProfileNode* out);

/// Largest per-operator Q-error in the tree, or -1 when no operator has
/// one (no estimates, or nothing completed). The query log's
/// `peak_qerror` field.
double PeakProfileQError(const PlanProfileNode& node);

/// Merges structurally identical per-shard profile trees into one
/// cluster-aggregate tree: actual rows / next calls / timings sum, the
/// per-shard estimates sum back to the global estimate, `completed` only
/// if every shard completed. Returns false (and leaves *out alone) when
/// the trees disagree in shape — callers then fall back to per-shard-only
/// display.
bool AggregateProfiles(const std::vector<const PlanProfileNode*>& shards,
                       PlanProfileNode* out);

}  // namespace popdb

#endif  // POPDB_CORE_EXPLAIN_H_
