#ifndef POPDB_DIST_SPLIT_H_
#define POPDB_DIST_SPLIT_H_

#include <memory>
#include <vector>

#include "dist/partition.h"
#include "exec/expr.h"
#include "exec/sort.h"
#include "opt/plan.h"
#include "opt/query.h"

namespace popdb::dist {

/// One final aggregate of the gather phase, merging per-shard partial
/// aggregates. `slot` is the partial value's position in the shard output
/// row (after the group columns); `slot2` is the companion COUNT slot a
/// partial AVG needs (SUM and COUNT ship separately, the coordinator
/// divides).
struct GatherAgg {
  AggFunc func = AggFunc::kCount;
  int slot = -1;
  int slot2 = -1;
};

/// Coordinator-side merge recipe for the streams coming back from the
/// shards: how to combine partial aggregates, then the post-merge steps
/// the coordinator owns (HAVING, DISTINCT, ORDER BY, LIMIT) — the same
/// query tail pop.cc would run on a single node.
struct GatherSpec {
  bool has_agg = false;
  int group_count = 0;           ///< Leading group-by columns per row.
  std::vector<GatherAgg> aggs;   ///< One entry per query aggregate.
  bool distinct = false;
  std::vector<ResolvedPredicate> having;
  std::vector<SortKey> order_by;
  int64_t limit = -1;
};

/// An optimized global plan cut into the fragment every shard executes and
/// the coordinator's gather recipe.
struct SplitPlan {
  std::shared_ptr<PlanNode> fragment;
  GatherSpec gather;
};

/// Bitmask of query tables that are range-partitioned under `spec`.
TableSet PartitionedMask(const QuerySpec& query, const PartitionSpec& spec);

/// True when scatter-gather execution of `query` is exhaustive: at least
/// one partitioned table is referenced, and the partitioned tables the
/// query touches form one connected component under join predicates that
/// equate their partition-key columns (co-partitioned joins). Queries that
/// fail this (e.g. a join of two partitioned tables on a non-key column)
/// must run on a single node.
bool IsShardable(const QuerySpec& query, const PartitionSpec& spec);

/// Splits `root` (the coordinator's optimized global plan) for scatter:
/// strips the final ORDER BY / HAVING into the gather spec, rewrites the
/// top aggregation into a shard-local partial aggregation (AVG becomes
/// SUM + COUNT), and keeps everything below on the fragment. `root` is
/// consumed (the fragment aliases its nodes).
Result<SplitPlan> SplitForShards(std::shared_ptr<PlanNode> root,
                                 const QuerySpec& query);

/// Scales a fragment's optimizer annotations to one shard's share of the
/// data: cardinalities, costs and validity ranges of every subplan whose
/// table set touches a partitioned table shrink by 1/num_shards (pure
/// replicated-table subplans keep their global values). Run before
/// checkpoint placement so the shard's CHECK ranges guard per-shard
/// cardinalities.
void ScalePlanForShard(PlanNode* node, TableSet partitioned_mask,
                       int num_shards);

/// Merges per-shard result streams on the coordinator: combines partial
/// aggregates group-wise, then applies HAVING, DISTINCT, ORDER BY and
/// LIMIT per the gather spec. Row order for unsorted queries follows
/// shard index then stream order (deterministic given the inputs).
std::vector<Row> GatherMerge(const GatherSpec& gather,
                             std::vector<std::vector<Row>> shard_rows);

}  // namespace popdb::dist

#endif  // POPDB_DIST_SPLIT_H_
