#include "dist/observability.h"

#include <cctype>

#include "common/json.h"

namespace popdb::dist {

namespace {

/// Span dumps are produced by our own servers, but a shard of an adjacent
/// version (or a chaos-killed one) may ship anything — bound the parse.
constexpr JsonParseLimits kTraceParseLimits{/*max_depth=*/16,
                                            /*max_nodes=*/2000000};

/// Re-emits one trace event with pid forced to `pid` and ts shifted by
/// `offset_us`; every other member passes through untouched.
void WriteShiftedEvent(const JsonValue& event, int64_t pid, int64_t offset_us,
                       JsonWriter* w) {
  w->BeginObject();
  bool wrote_pid = false;
  for (const auto& [key, value] : event.members()) {
    if (key == "pid") {
      w->Key("pid").Int(pid);
      wrote_pid = true;
    } else if (key == "ts" && value.is_number()) {
      w->Key("ts").Int(value.AsInt() + offset_us);
    } else {
      w->Key(key);
      value.WriteTo(w);
    }
  }
  if (!wrote_pid) w->Key("pid").Int(pid);
  w->EndObject();
}

}  // namespace

Result<std::string> StitchChromeTrace(
    const std::vector<ProcessTrace>& procs) {
  JsonWriter w;
  w.BeginArray();
  for (size_t i = 0; i < procs.size(); ++i) {
    const ProcessTrace& proc = procs[i];
    const int64_t pid = static_cast<int64_t>(i);
    // Perfetto names the process row from this metadata event.
    w.BeginObject();
    w.Key("name").String("process_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(pid);
    w.Key("tid").Int(0);
    w.Key("args").BeginObject().Key("name").String(proc.name).EndObject();
    w.EndObject();

    Result<JsonValue> parsed = JsonParse(proc.trace_json, kTraceParseLimits);
    if (!parsed.ok()) {
      return Status::Internal("trace dump of \"" + proc.name +
                              "\" is not valid JSON: " +
                              parsed.status().message());
    }
    if (parsed.value().kind() != JsonValue::Kind::kArray) {
      return Status::Internal("trace dump of \"" + proc.name +
                              "\" is not a trace_event array");
    }
    for (const JsonValue& event : parsed.value().items()) {
      if (event.kind() != JsonValue::Kind::kObject) continue;
      WriteShiftedEvent(event, pid, proc.ts_offset_us, &w);
    }
  }
  w.EndArray();
  return w.str();
}

std::string FederateMetricsText(
    const std::string& local_text,
    const std::vector<std::pair<std::string, std::string>>& shards) {
  std::string out = local_text;
  if (!out.empty() && out.back() != '\n') out += '\n';
  for (const auto& [label, text] : shards) {
    out += "# federated from shard " + label + "\n";
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string_view line(text.data() + pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // HELP/TYPE headers were already emitted for the local samples;
        // repeating them per shard would make the exposition invalid.
        continue;
      }
      // `name{labels} value` or `name value` — inject shard="label" as the
      // first label of the sample.
      const size_t brace = line.find('{');
      const size_t space = line.find(' ');
      if (brace != std::string_view::npos &&
          (space == std::string_view::npos || brace < space)) {
        out.append(line.substr(0, brace + 1));
        out += "shard=\"" + label + "\",";
        out.append(line.substr(brace + 1));
      } else if (space != std::string_view::npos) {
        out.append(line.substr(0, space));
        out += "{shard=\"" + label + "\"}";
        out.append(line.substr(space));
      } else {
        out.append(line);  // Malformed line: pass through untouched.
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace popdb::dist
