#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/span.h"
#include "core/explain.h"
#include "dist/observability.h"
#include "dist/plan_json.h"
#include "net/client.h"

namespace popdb::dist {

namespace {

Status CancelStatus(const CancelToken& cancel, const QuerySpec& query) {
  if (cancel.reason() == CancelReason::kDeadline) {
    return Status::DeadlineExceeded("distributed query '" + query.name() +
                                    "' exceeded its deadline");
  }
  return Status::Cancelled("distributed query '" + query.name() +
                           "' cancelled");
}

}  // namespace

/// Everything one gather thread learned about its shard's subquery.
struct Coordinator::ShardOutcome {
  Status status;
  std::string outcome;
  std::vector<Row> rows;
  bool has_violation = false;
  ReoptSignal violation;
  std::vector<EdgeObservation> observations;
  /// True when a query_done frame arrived (protocol completed; the
  /// observation list — possibly empty — is authoritative).
  bool reported = false;
  /// Shard-reported subplan wall time (coordinator-side round trip when
  /// the shard did not report one).
  double execute_ms = 0.0;
  /// Shard-side EXPLAIN ANALYZE snapshot of the executed fragment.
  PlanProfileNode profile;
  bool has_profile = false;
};

/// State shared between Execute() and the per-shard gather threads for one
/// scatter round.
struct Coordinator::ScatterState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ShardOutcome> shards;
  std::vector<int64_t> query_ids;  ///< Shard-assigned ids (-1 = unknown).
  std::vector<bool> finished;
  int done = 0;
  bool abort = false;  ///< A violation or shard error ended the round.
};

Coordinator::Coordinator(const Catalog& catalog, CoordinatorConfig config)
    : catalog_(catalog),
      config_(std::move(config)),
      pool_(config_.shards, config_.connect) {}

bool Coordinator::CanExecute(const QuerySpec& query) const {
  return !config_.shards.empty() && IsShardable(query, config_.partition);
}

void Coordinator::RegisterMetrics(MetricsRegistry* registry) {
  shards_up_ = registry->GetGauge(
      "popdb_dist_shards_up",
      "Shard endpoints reachable at the last scatter round.");
  queries_total_ = registry->GetCounter(
      "popdb_dist_queries_total",
      "Queries executed through the scatter-gather coordinator.");
  reopts_total_ = registry->GetCounter(
      "popdb_dist_reopts_total",
      "Coordinator-level global re-optimizations triggered by per-shard "
      "CHECK violations.");
  shard_errors_total_ = registry->GetCounter(
      "popdb_dist_shard_errors_total",
      "Shard subqueries that ended in a transport or execution error.");
  // Fan-out wall time spans in-memory merges to multi-second scans;
  // 1ms..~17min in doubling buckets.
  scatter_latency_ = registry->GetHistogram(
      "popdb_dist_scatter_latency_ms",
      "Wall time of one scatter round (fan-out to last shard done).",
      Histogram::LogBuckets(1.0, 2.0, 20));
  shard_rows_total_.clear();
  shard_latency_.clear();
  for (int i = 0; i < num_shards(); ++i) {
    const std::string label = "shard=\"" + std::to_string(i) + "\"";
    shard_rows_total_.push_back(registry->GetCounter(
        "popdb_dist_shard_rows_total",
        "Rows streamed back from each shard (all attempts).", label));
    shard_latency_.push_back(registry->GetHistogram(
        "popdb_dist_shard_latency_ms",
        "Per-shard subplan wall time within a scatter round.",
        Histogram::LogBuckets(1.0, 2.0, 20), label));
  }
  shard_lag_ = registry->GetHistogram(
      "popdb_dist_shard_lag_ms",
      "Straggler lag per scatter round: slowest minus fastest shard wall "
      "time.",
      Histogram::LogBuckets(1.0, 2.0, 16));
}

void Coordinator::GatherFromShard(int shard, const std::string& payload,
                                  const std::string& trace_token,
                                  ScatterState* state) {
  const double shard_start = NowMs();
  TRACE_SPAN_NAMED(gather_span, "gather_shard", "dist");
  gather_span.SetLabel(std::string_view(trace_token));
  gather_span.SetArg("shard", shard);
  ShardOutcome out;
  std::unique_ptr<net::Client> client;

  Result<std::unique_ptr<net::Client>> acquired = pool_.Acquire(shard);
  if (acquired.ok()) {
    client = std::move(acquired).TakeValue();
    Result<int64_t> started = client->SubplanStart(payload);
    if (started.ok()) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->query_ids[static_cast<size_t>(shard)] = started.value();
      }
      bool streaming = true;
      bool clean = false;
      while (streaming) {
        Result<net::ShardEvent> next = client->SubplanNext();
        if (!next.ok()) {
          out.status = next.status();
          break;
        }
        net::ShardEvent event = std::move(next).TakeValue();
        switch (event.kind) {
          case net::ShardEvent::Kind::kRows:
            for (Row& row : event.rows) out.rows.push_back(std::move(row));
            break;
          case net::ShardEvent::Kind::kViolation: {
            out.has_violation = true;
            out.violation.triggered = true;
            out.violation.edge_set = static_cast<TableSet>(
                event.payload.GetInt("edge_set", 0));
            out.violation.observed_rows =
                event.payload.GetNumber("observed_rows", 0.0);
            out.violation.exact = event.payload.GetBool("exact", false);
            int flavor = static_cast<int>(event.payload.GetInt("flavor", 0));
            if (flavor < 0 ||
                flavor > static_cast<int>(CheckFlavor::kWorkBound)) {
              flavor = 0;
            }
            out.violation.flavor = static_cast<CheckFlavor>(flavor);
            out.violation.check_lo =
                event.payload.GetNumber("check_lo", 0.0);
            // Un-narrowed bounds ship as null; read them back as infinity.
            out.violation.check_hi = event.payload.GetNumber(
                "check_hi", std::numeric_limits<double>::infinity());
            break;
          }
          case net::ShardEvent::Kind::kDone: {
            const std::string wire =
                event.payload.GetString("status", "internal");
            const StatusCode code = net::StatusCodeFromWireName(wire);
            if (code != StatusCode::kOk) {
              out.status = Status(
                  code, event.payload.GetString("message",
                                                "shard subquery failed"));
            }
            out.outcome = event.payload.GetString("outcome", "");
            out.execute_ms = event.payload.GetNumber("execute_ms", 0.0);
            if (const JsonValue* profile = event.payload.Find("profile")) {
              out.has_profile = ProfileFromJson(*profile, &out.profile);
            }
            if (const JsonValue* obs = event.payload.Find("observations")) {
              for (const JsonValue& o : obs->items()) {
                EdgeObservation e;
                e.set = static_cast<TableSet>(o.GetInt("set", 0));
                e.rows = o.GetNumber("rows", 0.0);
                e.exact = o.GetBool("exact", false);
                out.observations.push_back(e);
              }
            }
            out.reported = true;
            streaming = false;
            clean = true;
            break;
          }
        }
      }
      if (clean) pool_.Release(shard, std::move(client));
    } else {
      out.status = started.status();
    }
  } else {
    out.status = acquired.status();
  }

  if (out.execute_ms <= 0.0) out.execute_ms = NowMs() - shard_start;

  std::lock_guard<std::mutex> lock(state->mu);
  const size_t i = static_cast<size_t>(shard);
  state->shards[i] = std::move(out);
  state->finished[i] = true;
  ++state->done;
  if (!state->shards[i].status.ok() || state->shards[i].has_violation) {
    state->abort = true;
  }
  state->cv.notify_all();
}

void Coordinator::CancelShards(ScatterState* state) {
  std::vector<std::pair<int, int64_t>> targets;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (int i = 0; i < num_shards(); ++i) {
      const size_t s = static_cast<size_t>(i);
      if (!state->finished[s] && state->query_ids[s] >= 0) {
        targets.emplace_back(i, state->query_ids[s]);
      }
    }
  }
  // The streaming connections are mid-subplan, so cancels ride fresh
  // control connections (server-side cancellation is by query id and works
  // from any session). Best effort: a dead shard simply fails to connect.
  net::ClientConnectOptions options = config_.connect;
  options.retry_refused = false;
  for (const auto& [shard, query_id] : targets) {
    const net::Endpoint& ep = pool_.endpoint(shard);
    Result<net::Client> control =
        net::Client::Connect(ep.host, ep.port, options);
    if (!control.ok()) continue;
    control.value().Cancel(query_id);
    control.value().Close();
  }
}

Result<std::vector<Row>> Coordinator::Execute(const QuerySpec& query,
                                              CancelToken* cancel,
                                              QueryFeedbackStore* store,
                                              ExecutionStats* stats,
                                              const DistQueryInfo& dist_info) {
  const double start_ms = NowMs();
  if (queries_total_ != nullptr) queries_total_->Increment();
  const int n = num_shards();
  if (n == 0) {
    return Status::InvalidArgument("coordinator has no shard endpoints");
  }
  const std::string trace_token =
      dist_info.trace_token.empty()
          ? "q" + std::to_string(dist_info.query_id)
          : dist_info.trace_token;
  TRACE_SPAN_NAMED(dist_span, "dist_execute", "dist");
  dist_span.SetLabel(std::string_view(trace_token));
  dist_span.SetArg("query_id", dist_info.query_id);

  Optimizer optimizer(catalog_, config_.optimizer);
  const CostModel cost_model(config_.optimizer.cost);
  FeedbackCache feedback;
  if (store != nullptr) store->Seed(query, &feedback);
  const TableSet mask = PartitionedMask(query, config_.partition);
  const int max_attempts = config_.pop.max_reopts + 1;
  // Cluster-level global re-optimization uses the same incremental path as
  // local POP: the DP memo survives across scatter-gather attempts, and a
  // shard-reported CHECK violation only invalidates the entries covering
  // the escaped edge.
  IncrementalMemo attempt_memo;
  IncrementalMemo* memo =
      config_.pop.incremental_reopt ? &attempt_memo : nullptr;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancel->Expired()) return CancelStatus(*cancel, query);

    // ---- Global optimization, split, per-shard scaling, checkpoints.
    SpanTracer& tracer = SpanTracer::Global();
    const double opt_start = NowMs();
    const int64_t opt_start_us = tracer.enabled() ? tracer.NowUs() : 0;
    AttemptInfo info;
    ValidityRangeAnalyzer analyzer(cost_model, config_.pop.validity);
    const FeedbackMap fmap = feedback.Snapshot();
    Result<OptimizedPlan> planned = optimizer.Optimize(
        query, fmap.empty() ? nullptr : &fmap, nullptr, &analyzer, memo);
    if (!planned.ok()) return planned.status();
    info.candidates = planned.value().candidates;
    if (stats != nullptr) {
      stats->memo_entries_reused += planned.value().memo_reused;
      stats->memo_entries_invalidated += planned.value().memo_invalidated;
    }

    Result<SplitPlan> split_result =
        SplitForShards(std::move(planned.value().root), query);
    if (!split_result.ok()) return split_result.status();
    SplitPlan split = std::move(split_result).TakeValue();
    ScalePlanForShard(split.fragment.get(), mask, n);
    const bool final_attempt = attempt == max_attempts - 1;
    if (!final_attempt) {
      // The fragment's cardinalities and validity ranges are already
      // scaled to one shard's share, so these CHECKs guard per-shard
      // cardinalities.
      info.checks = PlaceCheckpoints(&split.fragment, config_.pop,
                                     cost_model, !query.has_aggregation());
    }
    info.plan_text = split.fragment->ToString();
    info.optimize_ms = NowMs() - opt_start;
    if (tracer.enabled()) {
      tracer.RecordSpan("dist_optimize", "dist", opt_start_us,
                        tracer.NowUs() - opt_start_us, "attempt", attempt,
                        tracer.Intern(trace_token));
    }

    // ---- One subplan payload, identical for every shard.
    JsonWriter w;
    w.BeginObject();
    w.Key("type");
    w.String("subplan");
    w.Key("query");
    AppendQuerySpecJson(query, &w);
    w.Key("plan");
    Status plan_status = AppendPlanJson(*split.fragment, &w);
    if (!plan_status.ok()) return plan_status;
    w.Key("batch_rows");
    w.Int(config_.batch_rows);
    w.Key("trace_token");
    w.String(trace_token);
    w.EndObject();
    const std::string payload = w.str();

    // ---- Scatter: one gather thread per shard; this thread polls for
    // cancellation and fans it out to every in-flight shard subquery.
    const double scatter_start = NowMs();
    const int64_t scatter_start_us = tracer.enabled() ? tracer.NowUs() : 0;
    ScatterState state;
    state.shards.resize(static_cast<size_t>(n));
    state.query_ids.assign(static_cast<size_t>(n), -1);
    state.finished.assign(static_cast<size_t>(n), false);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([this, i, &payload, &trace_token, &state] {
        GatherFromShard(i, payload, trace_token, &state);
      });
    }
    bool fanned_out = false;
    {
      std::unique_lock<std::mutex> lock(state.mu);
      while (state.done < n) {
        state.cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                                    config_.poll_interval_ms));
        if (!fanned_out && (state.abort || cancel->Expired())) {
          fanned_out = true;
          lock.unlock();
          TRACE_INSTANT_TAGGED("cancel_survivors", "dist", trace_token,
                               "attempt", attempt);
          CancelShards(&state);
          lock.lock();
        }
      }
    }
    for (std::thread& t : threads) t.join();
    info.execute_ms = NowMs() - scatter_start;
    if (tracer.enabled()) {
      tracer.RecordSpan("dist_scatter", "dist", scatter_start_us,
                        tracer.NowUs() - scatter_start_us, "attempt", attempt,
                        tracer.Intern(trace_token));
    }
    if (scatter_latency_ != nullptr) {
      scatter_latency_->Observe(info.execute_ms);
    }
    if (shards_up_ != nullptr) shards_up_->Set(pool_.endpoints_up());

    // ---- Per-shard breakdown: metrics, AttemptInfo::shards, straggler lag.
    double fastest_ms = std::numeric_limits<double>::infinity();
    double slowest_ms = 0.0;
    int timed_shards = 0;
    for (int i = 0; i < n; ++i) {
      const ShardOutcome& shard = state.shards[static_cast<size_t>(i)];
      ShardAttemptInfo sai;
      sai.shard = i;
      sai.execute_ms = shard.execute_ms;
      sai.rows = static_cast<int64_t>(shard.rows.size());
      sai.outcome = shard.has_violation ? "reoptimize"
                    : !shard.outcome.empty()
                        ? shard.outcome
                        : (shard.status.ok() ? "ok" : "error");
      info.shards.push_back(std::move(sai));
      if (!shard_rows_total_.empty()) {
        shard_rows_total_[static_cast<size_t>(i)]->Increment(
            static_cast<int64_t>(shard.rows.size()));
        shard_latency_[static_cast<size_t>(i)]->Observe(shard.execute_ms);
      }
      if (shard.reported) {
        fastest_ms = std::min(fastest_ms, shard.execute_ms);
        slowest_ms = std::max(slowest_ms, shard.execute_ms);
        ++timed_shards;
      }
    }
    if (shard_lag_ != nullptr && timed_shards >= 2) {
      shard_lag_->Observe(slowest_ms - fastest_ms);
    }

    // ---- Distributed EXPLAIN ANALYZE: merge the per-shard profile
    // snapshots under a synthetic gather root — one aggregate subtree
    // (per-operator actuals summed across shards, so global Q-error is
    // visible) plus one subtree per shard.
    {
      std::vector<const PlanProfileNode*> shard_profiles;
      for (const ShardOutcome& shard : state.shards) {
        if (shard.has_profile) shard_profiles.push_back(&shard.profile);
      }
      if (!shard_profiles.empty()) {
        PlanProfileNode root;
        root.name = "GATHER";
        root.detail = "scatter-gather over " + std::to_string(n) + " shards";
        PlanProfileNode cluster;
        if (AggregateProfiles(shard_profiles, &cluster)) {
          PlanProfileNode agg;
          agg.name = "CLUSTER";
          agg.detail = "aggregate of " +
                       std::to_string(shard_profiles.size()) + " shards";
          agg.children.push_back(std::move(cluster));
          root.children.push_back(std::move(agg));
        }
        for (int i = 0; i < n; ++i) {
          const ShardOutcome& shard = state.shards[static_cast<size_t>(i)];
          if (!shard.has_profile) continue;
          const net::Endpoint& ep = pool_.endpoint(i);
          PlanProfileNode per_shard;
          per_shard.name = "SHARD";
          per_shard.detail = "shard " + std::to_string(i) + " @" + ep.host +
                             ":" + std::to_string(ep.port);
          per_shard.children.push_back(shard.profile);
          root.children.push_back(std::move(per_shard));
        }
        info.profile = std::move(root);
        info.has_profile = true;
      }
    }

    if (cancel->Expired()) {
      if (stats != nullptr) {
        stats->attempts.push_back(std::move(info));
        stats->total_ms = NowMs() - start_ms;
      }
      return CancelStatus(*cancel, query);
    }

    // ---- Aggregate per-shard observations into global cardinalities:
    // subplans touching partitioned tables sum across shards (exact only
    // when every shard reported exactly); replicated-only subplans see the
    // full data on every shard, so the max (exact if any) is global truth.
    struct SetAgg {
      double sum = 0.0;
      double max = 0.0;
      int shards = 0;
      bool all_exact = true;
      bool any_exact = false;
    };
    std::map<TableSet, SetAgg> aggregated;
    for (const ShardOutcome& shard : state.shards) {
      if (!shard.reported) continue;
      for (const EdgeObservation& obs : shard.observations) {
        SetAgg& a = aggregated[obs.set];
        a.sum += obs.rows;
        a.max = std::max(a.max, obs.rows);
        ++a.shards;
        a.all_exact = a.all_exact && obs.exact;
        a.any_exact = a.any_exact || obs.exact;
      }
    }
    for (const auto& [set, a] : aggregated) {
      if ((set & mask) != 0) {
        if (a.all_exact && a.shards == n) {
          feedback.RecordExact(set, a.sum);
        } else {
          feedback.RecordLowerBound(set, a.sum);
        }
      } else {
        if (a.any_exact) {
          feedback.RecordExact(set, a.max);
        } else {
          feedback.RecordLowerBound(set, a.max);
        }
      }
    }

    // ---- Decide the round's outcome.
    int violating_shard = -1;
    Status shard_error;
    for (int i = 0; i < n; ++i) {
      const ShardOutcome& shard = state.shards[static_cast<size_t>(i)];
      if (shard.has_violation && violating_shard < 0) violating_shard = i;
      // Cancellations we caused ourselves are not errors.
      if (!shard.status.ok() &&
          shard.status.code() != StatusCode::kCancelled &&
          shard_error.ok()) {
        const net::Endpoint& ep = pool_.endpoint(i);
        shard_error = Status(
            shard.status.code(),
            "shard " + std::to_string(i) + " (" + ep.host + ":" +
                std::to_string(ep.port) + "): " + shard.status.message());
      }
    }

    if (violating_shard >= 0 && shard_error.ok() && !final_attempt) {
      // Cluster-level re-optimization: a shard CHECK left its validity
      // range. The attempt's rows are discarded (no compensation across
      // the wire); the harvested feedback redirects the next global plan.
      info.reoptimized = true;
      info.signal =
          state.shards[static_cast<size_t>(violating_shard)].violation;
      TRACE_INSTANT_TAGGED("check_violation", "dist", trace_token, "shard",
                           violating_shard);
      TRACE_INSTANT_TAGGED("global_reoptimize", "dist", trace_token,
                           "attempt", attempt);
      if (stats != nullptr) {
        ++stats->reopts;
        // Surface the shard CHECK in the service-side diagnostics (flavor
        // metrics, check history) exactly like a local CHECK firing.
        CheckEvent fired;
        fired.edge_set = info.signal.edge_set;
        fired.flavor = info.signal.flavor;
        fired.count = 1;
        fired.fired = true;
        stats->check_events.push_back(fired);
        stats->attempts.push_back(std::move(info));
      }
      if (reopts_total_ != nullptr) reopts_total_->Increment();
      continue;
    }

    if (!shard_error.ok()) {
      if (shard_errors_total_ != nullptr) shard_errors_total_->Increment();
      if (stats != nullptr) {
        stats->attempts.push_back(std::move(info));
        stats->total_ms = NowMs() - start_ms;
      }
      return shard_error;
    }
    if (violating_shard >= 0) {
      // Check-free final attempts cannot fire; a violation here means the
      // shard ran a plan we did not send.
      return Status::Internal("shard reported a CHECK violation on the "
                              "check-free final attempt");
    }

    // ---- Success: merge the shard streams and learn for the future.
    std::vector<std::vector<Row>> shard_rows;
    shard_rows.reserve(static_cast<size_t>(n));
    for (ShardOutcome& shard : state.shards) {
      shard_rows.push_back(std::move(shard.rows));
    }
    std::vector<Row> rows = GatherMerge(split.gather, std::move(shard_rows));
    info.rows_returned = static_cast<int64_t>(rows.size());
    if (store != nullptr && !feedback.empty()) {
      store->Absorb(query, feedback.Snapshot());
    }
    if (stats != nullptr) {
      stats->attempts.push_back(std::move(info));
      stats->total_ms = NowMs() - start_ms;
      stats->result_rows = static_cast<int64_t>(rows.size());
    }
    return rows;
  }
  return Status::Internal("distributed execution exhausted its attempts");
}

Result<std::string> Coordinator::ClusterTraceJson() {
  SpanTracer& tracer = SpanTracer::Global();
  std::vector<ProcessTrace> procs;
  procs.push_back({"coordinator", tracer.ExportChromeTrace(), 0});
  for (int i = 0; i < num_shards(); ++i) {
    Result<std::unique_ptr<net::Client>> acquired = pool_.Acquire(i);
    if (!acquired.ok()) continue;  // Dead shard: partial trace beats none.
    std::unique_ptr<net::Client> client = std::move(acquired).TakeValue();
    Result<net::ClientSpanDump> dump = client->Spans();
    if (!dump.ok()) continue;
    pool_.Release(i, std::move(client));
    const net::Endpoint& ep = pool_.endpoint(i);
    ProcessTrace proc;
    proc.name = "shard " + std::to_string(i) + " @" + ep.host + ":" +
                std::to_string(ep.port);
    proc.trace_json = std::move(dump.value().trace_json);
    // Rough clock alignment: shard tracer epochs differ from ours, so
    // shift each dump by the difference of the two "now" readings at
    // harvest time (network latency bounds the error).
    proc.ts_offset_us = tracer.NowUs() - dump.value().now_us;
    procs.push_back(std::move(proc));
  }
  return StitchChromeTrace(procs);
}

Result<std::string> Coordinator::FederatedMetricsText(
    const std::string& local_text) {
  std::vector<std::pair<std::string, std::string>> shard_texts;
  for (int i = 0; i < num_shards(); ++i) {
    Result<std::unique_ptr<net::Client>> acquired = pool_.Acquire(i);
    if (!acquired.ok()) continue;  // Dead shard: scrape what answers.
    std::unique_ptr<net::Client> client = std::move(acquired).TakeValue();
    Result<std::string> text = client->Metrics();
    if (!text.ok()) continue;
    pool_.Release(i, std::move(client));
    shard_texts.emplace_back(std::to_string(i), std::move(text).TakeValue());
  }
  return FederateMetricsText(local_text, shard_texts);
}

}  // namespace popdb::dist
