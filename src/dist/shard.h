#ifndef POPDB_DIST_SHARD_H_
#define POPDB_DIST_SHARD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/server.h"
#include "storage/catalog.h"

namespace popdb::dist {

/// Knobs for the shard-side subplan executor.
struct ShardExecutorConfig {
  int64_t default_batch_rows = 1024;
  int64_t max_batch_rows = 8192;
  /// Rows per *execution* batch (exec/batch.h) for the fragment's operator
  /// tree — independent of the wire batching above, which only frames the
  /// result stream. <= 1 runs the fragment row-at-a-time. Overridable per
  /// request with the "exec_batch_rows" key (the differential tests drive
  /// both engines through one shard this way).
  int64_t exec_batch_rows = 1024;
  /// Memory budget (rows) for sorts/materializations, matching
  /// CostParams::mem_rows on a standalone server.
  int64_t mem_rows = 1 << 20;
};

/// The shard side of scatter-gather execution: runs the coordinator's
/// serialized plan fragment against this shard's (partition-local) catalog
/// and streams row batches back while executing. When a CHECK operator in
/// the fragment fires — a per-shard cardinality left its scaled validity
/// range — execution aborts and the RunResult carries the check_violation
/// payload plus every cardinality observation the aborted run can justify,
/// so the coordinator can re-optimize the global plan.
///
/// Thread safe: each Run builds a private operator tree; the catalog is
/// only read.
class ShardExecutor : public net::SubplanBackend {
 public:
  explicit ShardExecutor(const Catalog& catalog,
                         ShardExecutorConfig config = {});

  RunResult Run(const JsonValue& request, CancelToken* cancel,
                const std::function<bool(const std::vector<Row>&)>& emit)
      override;

 private:
  const Catalog& catalog_;
  ShardExecutorConfig config_;
};

}  // namespace popdb::dist

#endif  // POPDB_DIST_SHARD_H_
