#include "dist/split.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"

namespace popdb::dist {

namespace {

/// Lexicographic row order via Value::Compare (group-key map ordering).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Accumulator for one final aggregate across shards.
struct AggAccum {
  int64_t count = 0;
  double sum = 0.0;
  Value extreme;  ///< Running MIN/MAX (Null until a non-null partial).
};

}  // namespace

TableSet PartitionedMask(const QuerySpec& query, const PartitionSpec& spec) {
  TableSet mask = 0;
  for (int id = 0; id < query.num_tables(); ++id) {
    if (spec.IsPartitioned(query.table_name(id))) mask |= TableBit(id);
  }
  return mask;
}

bool IsShardable(const QuerySpec& query, const PartitionSpec& spec) {
  std::vector<int> partitioned;
  for (int id = 0; id < query.num_tables(); ++id) {
    if (spec.IsPartitioned(query.table_name(id))) partitioned.push_back(id);
  }
  if (partitioned.empty()) return false;
  if (partitioned.size() == 1) return true;
  // The partitioned tables must form one connected component under joins
  // that equate partition keys; otherwise some join pairs live on
  // different shards and a shard-local join would lose them.
  auto key_column = [&](int id) {
    return spec.KeyColumn(query.table_name(id));
  };
  const TableSet mask = PartitionedMask(query, spec);
  std::vector<std::vector<int>> adj(
      static_cast<size_t>(query.num_tables()));
  for (const JoinPredicate& j : query.join_preds()) {
    const int lt = j.left.table_id;
    const int rt = j.right.table_id;
    if (!ContainsTable(mask, lt) || !ContainsTable(mask, rt)) continue;
    if (j.left.column == key_column(lt) && j.right.column == key_column(rt)) {
      adj[static_cast<size_t>(lt)].push_back(rt);
      adj[static_cast<size_t>(rt)].push_back(lt);
    }
  }
  std::vector<bool> seen(static_cast<size_t>(query.num_tables()), false);
  std::vector<int> frontier = {partitioned[0]};
  seen[static_cast<size_t>(partitioned[0])] = true;
  while (!frontier.empty()) {
    const int id = frontier.back();
    frontier.pop_back();
    for (const int next : adj[static_cast<size_t>(id)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        frontier.push_back(next);
      }
    }
  }
  for (const int id : partitioned) {
    if (!seen[static_cast<size_t>(id)]) return false;
  }
  return true;
}

Result<SplitPlan> SplitForShards(std::shared_ptr<PlanNode> root,
                                 const QuerySpec& query) {
  SplitPlan split;
  std::shared_ptr<PlanNode> cur = std::move(root);

  if (!query.order_by().empty()) {
    if (cur->kind != PlanOpKind::kSort || cur->children.size() != 1) {
      return Status::Internal("expected final sort node to split off");
    }
    split.gather.order_by = cur->sort_keys;
    cur = cur->children[0];
  }
  if (!query.having().empty()) {
    if (cur->kind != PlanOpKind::kFilter || cur->children.size() != 1) {
      return Status::Internal("expected having filter node to split off");
    }
    split.gather.having = cur->filter_preds;
    cur = cur->children[0];
  }
  if (query.has_aggregation()) {
    if (cur->kind != PlanOpKind::kAgg || cur->children.size() != 1) {
      return Status::Internal("expected aggregation node to rewrite");
    }
    split.gather.has_agg = true;
    split.gather.group_count =
        static_cast<int>(cur->group_positions.size());
    // Two-phase aggregation: the shard runs a partial aggregation whose
    // output row is [group cols | one partial per aggregate | extra COUNT
    // per AVG]; the coordinator combines the partials group-wise. COUNT
    // partials merge by summing, SUM by summing, MIN/MAX by re-extremizing,
    // and AVG ships as a SUM partial plus an appended COUNT partial.
    const std::vector<ResolvedAgg> original = cur->agg_specs;
    std::vector<ResolvedAgg> shard_aggs = original;
    for (size_t i = 0; i < original.size(); ++i) {
      GatherAgg g;
      g.func = original[i].func;
      g.slot = split.gather.group_count + static_cast<int>(i);
      if (original[i].func == AggFunc::kAvg) {
        shard_aggs[i].func = AggFunc::kSum;
        ResolvedAgg extra_count;
        extra_count.func = AggFunc::kCount;
        extra_count.pos = 0;
        g.slot2 = split.gather.group_count +
                  static_cast<int>(shard_aggs.size());
        shard_aggs.push_back(extra_count);
      }
      split.gather.aggs.push_back(g);
    }
    cur->agg_specs = std::move(shard_aggs);
  }
  // A DISTINCT dedup (a group-by kAgg with no aggregates) stays on the
  // shard as a local pre-dedup; the coordinator dedups again across
  // shards.
  split.gather.distinct = query.distinct();
  split.gather.limit = query.limit();
  split.fragment = std::move(cur);
  return split;
}

void ScalePlanForShard(PlanNode* node, TableSet partitioned_mask,
                       int num_shards) {
  if (num_shards <= 1) return;
  // Recursive pass returning the factor applied to each subtree so the
  // parent can scale the matching validity ranges; set==0 operators
  // (agg/project/filter above the join tree) inherit their child's factor.
  struct Scaler {
    TableSet mask;
    double shrink;

    double Visit(PlanNode* n) {
      double child_factor = 1.0;
      for (size_t i = 0; i < n->children.size(); ++i) {
        const double f = Visit(n->children[i].get());
        if (i < n->child_validity.size()) {
          n->child_validity[i].lo *= f;
          n->child_validity[i].hi *= f;  // inf stays inf
        }
        child_factor = std::min(child_factor, f);
      }
      const double factor =
          (n->set & mask) != 0 ? shrink : (n->set == 0 ? child_factor : 1.0);
      n->card *= factor;
      n->op_cost *= factor;
      n->cost *= factor;
      return factor;
    }
  };
  Scaler scaler{partitioned_mask, 1.0 / num_shards};
  scaler.Visit(node);
}

std::vector<Row> GatherMerge(const GatherSpec& gather,
                             std::vector<std::vector<Row>> shard_rows) {
  std::vector<Row> rows;
  if (gather.has_agg) {
    // Group-wise combination of the partial-aggregate rows. A std::map
    // keyed on the group columns gives a deterministic output order.
    std::map<Row, std::vector<AggAccum>, RowLess> groups;
    for (std::vector<Row>& shard : shard_rows) {
      for (Row& row : shard) {
        Row key(row.begin(), row.begin() + gather.group_count);
        std::vector<AggAccum>& accums = groups[std::move(key)];
        accums.resize(gather.aggs.size());
        for (size_t j = 0; j < gather.aggs.size(); ++j) {
          const GatherAgg& g = gather.aggs[j];
          AggAccum& a = accums[j];
          const Value& partial = row[static_cast<size_t>(g.slot)];
          switch (g.func) {
            case AggFunc::kCount:
              a.count += partial.AsInt();
              break;
            case AggFunc::kSum:
              if (!partial.is_null()) a.sum += partial.AsNumeric();
              break;
            case AggFunc::kMin:
              if (!partial.is_null() &&
                  (a.extreme.is_null() || partial < a.extreme)) {
                a.extreme = partial;
              }
              break;
            case AggFunc::kMax:
              if (!partial.is_null() &&
                  (a.extreme.is_null() || partial > a.extreme)) {
                a.extreme = partial;
              }
              break;
            case AggFunc::kAvg:
              if (!partial.is_null()) a.sum += partial.AsNumeric();
              a.count += row[static_cast<size_t>(g.slot2)].AsInt();
              break;
          }
        }
      }
    }
    rows.reserve(groups.size());
    for (auto& [key, accums] : groups) {
      Row out = key;
      for (size_t j = 0; j < gather.aggs.size(); ++j) {
        const AggAccum& a = accums[j];
        switch (gather.aggs[j].func) {
          case AggFunc::kCount:
            out.push_back(Value::Int(a.count));
            break;
          case AggFunc::kSum:
            out.push_back(Value::Double(a.sum));
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            out.push_back(a.extreme);
            break;
          case AggFunc::kAvg:
            out.push_back(
                Value::Double(a.count == 0 ? 0.0 : a.sum / a.count));
            break;
        }
      }
      rows.push_back(std::move(out));
    }
  } else {
    size_t total = 0;
    for (const std::vector<Row>& shard : shard_rows) total += shard.size();
    rows.reserve(total);
    for (std::vector<Row>& shard : shard_rows) {
      for (Row& row : shard) rows.push_back(std::move(row));
    }
  }

  if (!gather.having.empty()) {
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](const Row& row) {
                                for (const ResolvedPredicate& pred :
                                     gather.having) {
                                  if (!EvalPredicate(pred, row)) return true;
                                }
                                return false;
                              }),
               rows.end());
  }
  if (gather.distinct && !gather.has_agg) {
    std::unordered_set<Row, RowHash> seen;
    std::vector<Row> deduped;
    deduped.reserve(rows.size());
    for (Row& row : rows) {
      if (seen.insert(row).second) deduped.push_back(std::move(row));
    }
    rows = std::move(deduped);
  }
  if (!gather.order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       return CompareRowsByKeys(a, b, gather.order_by) < 0;
                     });
  }
  if (gather.limit >= 0 &&
      static_cast<int64_t>(rows.size()) > gather.limit) {
    rows.resize(static_cast<size_t>(gather.limit));
  }
  return rows;
}

}  // namespace popdb::dist
