#include "dist/plan_json.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "net/wire.h"

namespace popdb::dist {

namespace {

void AppendColRef(const ColRef& col, JsonWriter* w) {
  w->BeginObject();
  w->Key("t").Int(col.table_id);
  w->Key("c").Int(col.column);
  w->EndObject();
}

Result<ColRef> ColRefFromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("column ref must be an object");
  }
  ColRef col;
  col.table_id = static_cast<int>(json.GetInt("t", -1));
  col.column = static_cast<int>(json.GetInt("c", -1));
  return col;
}

Result<Value> ValueField(const JsonValue& parent, std::string_view key) {
  const JsonValue* v = parent.Find(key);
  if (v == nullptr) return Value::Null();
  return net::ValueFromJson(*v);
}

Result<std::vector<Value>> ValueList(const JsonValue* array) {
  std::vector<Value> out;
  if (array == nullptr) return out;
  if (array->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("value list must be an array");
  }
  for (const JsonValue& item : array->items()) {
    Result<Value> v = net::ValueFromJson(item);
    if (!v.ok()) return v.status();
    out.push_back(std::move(v).TakeValue());
  }
  return out;
}

Result<std::vector<int>> IntList(const JsonValue* array,
                                 std::string_view what) {
  std::vector<int> out;
  if (array == nullptr) return out;
  if (array->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(std::string(what) + " must be an array");
  }
  for (const JsonValue& item : array->items()) {
    if (item.kind() != JsonValue::Kind::kInt) {
      return Status::InvalidArgument(std::string(what) +
                                     " entries must be integers");
    }
    out.push_back(static_cast<int>(item.AsInt()));
  }
  return out;
}

bool ValidEnum(int64_t v, int64_t max_inclusive) {
  return v >= 0 && v <= max_inclusive;
}

void AppendResolvedPred(const ResolvedPredicate& pred, JsonWriter* w) {
  w->BeginObject();
  w->Key("pos").Int(pred.pos);
  w->Key("kind").Int(static_cast<int>(pred.kind));
  w->Key("operand");
  net::AppendValueJson(pred.operand, w);
  w->Key("operand2");
  net::AppendValueJson(pred.operand2, w);
  if (!pred.in_list.empty()) {
    w->Key("in_list").BeginArray();
    for (const Value& v : pred.in_list) net::AppendValueJson(v, w);
    w->EndArray();
  }
  w->EndObject();
}

Result<ResolvedPredicate> ResolvedPredFromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("resolved predicate must be an object");
  }
  ResolvedPredicate pred;
  pred.pos = static_cast<int>(json.GetInt("pos", -1));
  const int64_t kind = json.GetInt("kind", -1);
  if (!ValidEnum(kind, static_cast<int64_t>(PredKind::kLike))) {
    return Status::InvalidArgument("bad predicate kind");
  }
  pred.kind = static_cast<PredKind>(kind);
  Result<Value> operand = ValueField(json, "operand");
  if (!operand.ok()) return operand.status();
  pred.operand = std::move(operand).TakeValue();
  Result<Value> operand2 = ValueField(json, "operand2");
  if (!operand2.ok()) return operand2.status();
  pred.operand2 = std::move(operand2).TakeValue();
  Result<std::vector<Value>> in_list = ValueList(json.Find("in_list"));
  if (!in_list.ok()) return in_list.status();
  pred.in_list = std::move(in_list).TakeValue();
  return pred;
}

}  // namespace

void AppendQuerySpecJson(const QuerySpec& query, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(query.name());
  w->Key("tables").BeginArray();
  for (const std::string& t : query.tables()) w->String(t);
  w->EndArray();
  w->Key("local_preds").BeginArray();
  for (const Predicate& p : query.local_preds()) {
    w->BeginObject();
    w->Key("col");
    AppendColRef(p.col, w);
    w->Key("kind").Int(static_cast<int>(p.kind));
    if (p.is_param) {
      w->Key("param_index").Int(p.param_index);
    } else {
      w->Key("operand");
      net::AppendValueJson(p.operand, w);
      w->Key("operand2");
      net::AppendValueJson(p.operand2, w);
      if (p.kind == PredKind::kIn) {
        w->Key("in_list").BeginArray();
        for (const Value& v : p.in_list) net::AppendValueJson(v, w);
        w->EndArray();
      }
    }
    w->EndObject();
  }
  w->EndArray();
  w->Key("join_preds").BeginArray();
  for (const JoinPredicate& j : query.join_preds()) {
    w->BeginObject();
    w->Key("left");
    AppendColRef(j.left, w);
    w->Key("right");
    AppendColRef(j.right, w);
    w->EndObject();
  }
  w->EndArray();
  w->Key("projections").BeginArray();
  for (const ColRef& c : query.projections()) AppendColRef(c, w);
  w->EndArray();
  w->Key("group_by").BeginArray();
  for (const ColRef& c : query.group_by()) AppendColRef(c, w);
  w->EndArray();
  w->Key("aggs").BeginArray();
  for (const QuerySpec::Agg& a : query.aggs()) {
    w->BeginObject();
    w->Key("func").Int(static_cast<int>(a.func));
    w->Key("arg");
    AppendColRef(a.arg, w);
    w->EndObject();
  }
  w->EndArray();
  w->Key("order_by").BeginArray();
  for (const QuerySpec::OrderKey& k : query.order_by()) {
    w->BeginObject();
    w->Key("pos").Int(k.output_pos);
    w->Key("desc").Bool(k.descending);
    w->EndObject();
  }
  w->EndArray();
  w->Key("having").BeginArray();
  for (const QuerySpec::HavingPred& h : query.having()) {
    w->BeginObject();
    w->Key("pos").Int(h.output_pos);
    w->Key("kind").Int(static_cast<int>(h.kind));
    w->Key("operand");
    net::AppendValueJson(h.operand, w);
    w->Key("operand2");
    net::AppendValueJson(h.operand2, w);
    w->EndObject();
  }
  w->EndArray();
  w->Key("distinct").Bool(query.distinct());
  w->Key("limit").Int(query.limit());
  w->Key("params").BeginArray();
  for (const Value& v : query.params()) net::AppendValueJson(v, w);
  w->EndArray();
  w->EndObject();
}

Result<QuerySpec> QuerySpecFromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("query spec must be an object");
  }
  QuerySpec query(json.GetString("name", "subplan"));

  const JsonValue* tables = json.Find("tables");
  if (tables == nullptr || tables->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("query spec missing tables array");
  }
  for (const JsonValue& t : tables->items()) {
    if (t.kind() != JsonValue::Kind::kString) {
      return Status::InvalidArgument("table names must be strings");
    }
    query.AddTable(t.AsString());
  }

  if (const JsonValue* preds = json.Find("local_preds"); preds != nullptr) {
    if (preds->kind() != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("local_preds must be an array");
    }
    for (const JsonValue& p : preds->items()) {
      const JsonValue* col_json = p.Find("col");
      if (col_json == nullptr) {
        return Status::InvalidArgument("predicate missing col");
      }
      Result<ColRef> col = ColRefFromJson(*col_json);
      if (!col.ok()) return col.status();
      const int64_t kind = p.GetInt("kind", -1);
      if (!ValidEnum(kind, static_cast<int64_t>(PredKind::kLike))) {
        return Status::InvalidArgument("bad predicate kind");
      }
      if (const JsonValue* pi = p.Find("param_index"); pi != nullptr) {
        query.AddParamPred(col.value(), static_cast<PredKind>(kind),
                           static_cast<int>(pi->AsInt()));
        continue;
      }
      if (static_cast<PredKind>(kind) == PredKind::kIn) {
        Result<std::vector<Value>> in_list = ValueList(p.Find("in_list"));
        if (!in_list.ok()) return in_list.status();
        query.AddInPred(col.value(), std::move(in_list).TakeValue());
        continue;
      }
      Result<Value> operand = ValueField(p, "operand");
      if (!operand.ok()) return operand.status();
      Result<Value> operand2 = ValueField(p, "operand2");
      if (!operand2.ok()) return operand2.status();
      query.AddPred(col.value(), static_cast<PredKind>(kind),
                    std::move(operand).TakeValue(),
                    std::move(operand2).TakeValue());
    }
  }

  if (const JsonValue* joins = json.Find("join_preds"); joins != nullptr) {
    for (const JsonValue& j : joins->items()) {
      const JsonValue* left = j.Find("left");
      const JsonValue* right = j.Find("right");
      if (left == nullptr || right == nullptr) {
        return Status::InvalidArgument("join predicate missing side");
      }
      Result<ColRef> l = ColRefFromJson(*left);
      if (!l.ok()) return l.status();
      Result<ColRef> r = ColRefFromJson(*right);
      if (!r.ok()) return r.status();
      query.AddJoin(l.value(), r.value());
    }
  }

  if (const JsonValue* projs = json.Find("projections"); projs != nullptr) {
    for (const JsonValue& p : projs->items()) {
      Result<ColRef> c = ColRefFromJson(p);
      if (!c.ok()) return c.status();
      query.AddProjection(c.value());
    }
  }
  if (const JsonValue* groups = json.Find("group_by"); groups != nullptr) {
    for (const JsonValue& g : groups->items()) {
      Result<ColRef> c = ColRefFromJson(g);
      if (!c.ok()) return c.status();
      query.AddGroupBy(c.value());
    }
  }
  if (const JsonValue* aggs = json.Find("aggs"); aggs != nullptr) {
    for (const JsonValue& a : aggs->items()) {
      const int64_t func = a.GetInt("func", -1);
      if (!ValidEnum(func, static_cast<int64_t>(AggFunc::kAvg))) {
        return Status::InvalidArgument("bad aggregate function");
      }
      ColRef arg;
      if (const JsonValue* arg_json = a.Find("arg"); arg_json != nullptr) {
        Result<ColRef> c = ColRefFromJson(*arg_json);
        if (!c.ok()) return c.status();
        arg = c.value();
      }
      query.AddAgg(static_cast<AggFunc>(func), arg);
    }
  }
  if (const JsonValue* order = json.Find("order_by"); order != nullptr) {
    for (const JsonValue& k : order->items()) {
      query.AddOrderBy(static_cast<int>(k.GetInt("pos", 0)),
                       k.GetBool("desc", false));
    }
  }
  if (const JsonValue* having = json.Find("having"); having != nullptr) {
    for (const JsonValue& h : having->items()) {
      const int64_t kind = h.GetInt("kind", -1);
      if (!ValidEnum(kind, static_cast<int64_t>(PredKind::kLike))) {
        return Status::InvalidArgument("bad having kind");
      }
      Result<Value> operand = ValueField(h, "operand");
      if (!operand.ok()) return operand.status();
      Result<Value> operand2 = ValueField(h, "operand2");
      if (!operand2.ok()) return operand2.status();
      query.AddHaving(static_cast<int>(h.GetInt("pos", 0)),
                      static_cast<PredKind>(kind),
                      std::move(operand).TakeValue(),
                      std::move(operand2).TakeValue());
    }
  }
  query.SetDistinct(json.GetBool("distinct", false));
  query.SetLimit(json.GetInt("limit", -1));
  Result<std::vector<Value>> params = ValueList(json.Find("params"));
  if (!params.ok()) return params.status();
  for (Value& v : params.value()) query.BindParam(std::move(v));
  return query;
}

Status AppendPlanJson(const PlanNode& node, JsonWriter* w) {
  if (node.kind == PlanOpKind::kMatViewScan) {
    return Status::InvalidArgument(
        "matview scans cannot be serialized (execution-scoped rows)");
  }
  w->BeginObject();
  w->Key("kind").Int(static_cast<int>(node.kind));
  w->Key("set").Int(static_cast<int64_t>(node.set));
  w->Key("card").Double(node.card);
  w->Key("cost").Double(node.cost);
  w->Key("op_cost").Double(node.op_cost);
  if (node.assumptions != 0) w->Key("assumptions").Int(node.assumptions);
  if (node.table_id >= 0) w->Key("table_id").Int(node.table_id);
  if (!node.table_name.empty()) w->Key("table_name").String(node.table_name);
  if (!node.pred_ids.empty()) {
    w->Key("pred_ids").BeginArray();
    for (const int id : node.pred_ids) w->Int(id);
    w->EndArray();
  }
  if (!node.join_pred_ids.empty()) {
    w->Key("join_pred_ids").BeginArray();
    for (const int id : node.join_pred_ids) w->Int(id);
    w->EndArray();
  }
  if (node.use_index) w->Key("use_index").Bool(true);
  if (node.index_col >= 0) w->Key("index_col").Int(node.index_col);
  if (node.per_probe_cost != 0) {
    w->Key("per_probe_cost").Double(node.per_probe_cost);
  }
  if (!node.sort_keys.empty()) {
    w->Key("sort_keys").BeginArray();
    for (const SortKey& k : node.sort_keys) {
      w->BeginObject();
      w->Key("pos").Int(k.pos);
      w->Key("desc").Bool(k.descending);
      w->EndObject();
    }
    w->EndArray();
  }
  if (!node.group_positions.empty()) {
    w->Key("group_positions").BeginArray();
    for (const int p : node.group_positions) w->Int(p);
    w->EndArray();
  }
  if (!node.agg_specs.empty()) {
    w->Key("agg_specs").BeginArray();
    for (const ResolvedAgg& a : node.agg_specs) {
      w->BeginObject();
      w->Key("func").Int(static_cast<int>(a.func));
      w->Key("pos").Int(a.pos);
      w->EndObject();
    }
    w->EndArray();
  }
  if (!node.positions.empty()) {
    w->Key("positions").BeginArray();
    for (const int p : node.positions) w->Int(p);
    w->EndArray();
  }
  if (!node.filter_preds.empty()) {
    w->Key("filter_preds").BeginArray();
    for (const ResolvedPredicate& p : node.filter_preds) {
      AppendResolvedPred(p, w);
    }
    w->EndArray();
  }
  if (node.check.enabled) {
    w->Key("check").BeginObject();
    w->Key("lo").Double(node.check.lo);
    w->Key("hi").Double(node.check.hi);
    w->Key("flavor").Int(static_cast<int>(node.check.flavor));
    w->Key("edge_set").Int(static_cast<int64_t>(node.check.edge_set));
    if (node.check.observe_only) w->Key("observe_only").Bool(true);
    w->EndObject();
  }
  if (node.work_budget != 0) w->Key("work_budget").Double(node.work_budget);
  w->Key("child_validity").BeginArray();
  for (const ValidityRange& r : node.child_validity) {
    w->BeginObject();
    w->Key("lo").Double(r.lo);
    w->Key("hi");
    // Infinity (un-narrowed upper bound) is not representable in JSON.
    if (std::isfinite(r.hi)) {
      w->Double(r.hi);
    } else {
      w->Null();
    }
    w->EndObject();
  }
  w->EndArray();
  w->Key("children").BeginArray();
  for (const std::shared_ptr<PlanNode>& child : node.children) {
    Status s = AppendPlanJson(*child, w);
    if (!s.ok()) return s;
  }
  w->EndArray();
  w->EndObject();
  return Status::Ok();
}

Result<std::shared_ptr<PlanNode>> PlanFromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("plan node must be an object");
  }
  auto node = std::make_shared<PlanNode>();
  const int64_t kind = json.GetInt("kind", -1);
  if (!ValidEnum(kind, static_cast<int64_t>(PlanOpKind::kAntiComp))) {
    return Status::InvalidArgument("bad plan node kind");
  }
  node->kind = static_cast<PlanOpKind>(kind);
  if (node->kind == PlanOpKind::kMatViewScan) {
    return Status::InvalidArgument("matview scans cannot cross the wire");
  }
  node->set = static_cast<TableSet>(json.GetInt("set", 0));
  node->card = json.GetNumber("card", 0.0);
  node->cost = json.GetNumber("cost", 0.0);
  node->op_cost = json.GetNumber("op_cost", 0.0);
  node->assumptions = static_cast<int>(json.GetInt("assumptions", 0));
  node->table_id = static_cast<int>(json.GetInt("table_id", -1));
  node->table_name = json.GetString("table_name", "");
  Result<std::vector<int>> pred_ids = IntList(json.Find("pred_ids"),
                                              "pred_ids");
  if (!pred_ids.ok()) return pred_ids.status();
  node->pred_ids = std::move(pred_ids).TakeValue();
  Result<std::vector<int>> join_pred_ids =
      IntList(json.Find("join_pred_ids"), "join_pred_ids");
  if (!join_pred_ids.ok()) return join_pred_ids.status();
  node->join_pred_ids = std::move(join_pred_ids).TakeValue();
  node->use_index = json.GetBool("use_index", false);
  node->index_col = static_cast<int>(json.GetInt("index_col", -1));
  node->per_probe_cost = json.GetNumber("per_probe_cost", 0.0);
  if (const JsonValue* keys = json.Find("sort_keys"); keys != nullptr) {
    for (const JsonValue& k : keys->items()) {
      SortKey key;
      key.pos = static_cast<int>(k.GetInt("pos", -1));
      key.descending = k.GetBool("desc", false);
      node->sort_keys.push_back(key);
    }
  }
  Result<std::vector<int>> groups = IntList(json.Find("group_positions"),
                                            "group_positions");
  if (!groups.ok()) return groups.status();
  node->group_positions = std::move(groups).TakeValue();
  if (const JsonValue* aggs = json.Find("agg_specs"); aggs != nullptr) {
    for (const JsonValue& a : aggs->items()) {
      const int64_t func = a.GetInt("func", -1);
      if (!ValidEnum(func, static_cast<int64_t>(AggFunc::kAvg))) {
        return Status::InvalidArgument("bad agg func in plan");
      }
      ResolvedAgg agg;
      agg.func = static_cast<AggFunc>(func);
      agg.pos = static_cast<int>(a.GetInt("pos", -1));
      node->agg_specs.push_back(agg);
    }
  }
  Result<std::vector<int>> positions = IntList(json.Find("positions"),
                                               "positions");
  if (!positions.ok()) return positions.status();
  node->positions = std::move(positions).TakeValue();
  if (const JsonValue* preds = json.Find("filter_preds"); preds != nullptr) {
    for (const JsonValue& p : preds->items()) {
      Result<ResolvedPredicate> pred = ResolvedPredFromJson(p);
      if (!pred.ok()) return pred.status();
      node->filter_preds.push_back(std::move(pred).TakeValue());
    }
  }
  if (const JsonValue* check = json.Find("check"); check != nullptr) {
    node->check.enabled = true;
    node->check.lo = check->GetNumber("lo", 0.0);
    node->check.hi = check->GetNumber("hi", 0.0);
    const int64_t flavor = check->GetInt("flavor", 0);
    if (!ValidEnum(flavor, static_cast<int64_t>(CheckFlavor::kWorkBound))) {
      return Status::InvalidArgument("bad check flavor");
    }
    node->check.flavor = static_cast<CheckFlavor>(flavor);
    node->check.edge_set =
        static_cast<TableSet>(check->GetInt("edge_set", 0));
    node->check.observe_only = check->GetBool("observe_only", false);
  }
  node->work_budget = json.GetNumber("work_budget", 0.0);
  if (const JsonValue* validity = json.Find("child_validity");
      validity != nullptr) {
    for (const JsonValue& r : validity->items()) {
      ValidityRange range;
      range.lo = r.GetNumber("lo", 0.0);
      const JsonValue* hi = r.Find("hi");
      range.hi = (hi == nullptr || hi->is_null())
                     ? std::numeric_limits<double>::infinity()
                     : hi->AsDouble();
      node->child_validity.push_back(range);
    }
  }
  if (const JsonValue* children = json.Find("children");
      children != nullptr) {
    for (const JsonValue& c : children->items()) {
      Result<std::shared_ptr<PlanNode>> child = PlanFromJson(c);
      if (!child.ok()) return child.status();
      node->children.push_back(std::move(child).TakeValue());
    }
  }
  return node;
}

}  // namespace popdb::dist
