#ifndef POPDB_DIST_PLAN_JSON_H_
#define POPDB_DIST_PLAN_JSON_H_

#include <memory>

#include "common/json.h"
#include "common/status.h"
#include "opt/plan.h"
#include "opt/query.h"

namespace popdb::dist {

/// JSON (de)serialization of the logical query and the physical plan for
/// the `subplan` wire request (docs/WIRE.md). Enums travel as integers;
/// Values use the wire value encoding (net/wire.h) so doubles round-trip
/// exactly. Infinity (un-narrowed validity upper bounds) is encoded as
/// JSON null. kMatViewScan nodes are rejected: temporary matviews are
/// execution-scoped pointers and never cross the wire.

void AppendQuerySpecJson(const QuerySpec& query, JsonWriter* w);
Result<QuerySpec> QuerySpecFromJson(const JsonValue& json);

Status AppendPlanJson(const PlanNode& node, JsonWriter* w);
Result<std::shared_ptr<PlanNode>> PlanFromJson(const JsonValue& json);

}  // namespace popdb::dist

#endif  // POPDB_DIST_PLAN_JSON_H_
