#include "dist/partition.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"

namespace popdb::dist {

bool PartitionSpec::IsPartitioned(const std::string& table) const {
  return KeyColumn(table) >= 0;
}

int PartitionSpec::KeyColumn(const std::string& table) const {
  for (const TableKey& key : keys) {
    if (key.table == table) return key.column;
  }
  return -1;
}

PartitionSpec TpchPartitionSpec() {
  PartitionSpec spec;
  // The two fact tables share the order-key domain; dimensions replicate.
  spec.keys = {{"orders", 0}, {"lineitem", 0}};
  spec.indexes = {
      {"region", "r_regionkey"},   {"nation", "n_nationkey"},
      {"supplier", "s_suppkey"},   {"customer", "c_custkey"},
      {"orders", "o_orderkey"},    {"lineitem", "l_orderkey"},
      {"lineitem", "l_partkey"},   {"part", "p_partkey"},
      {"partsupp", "ps_partkey"},  {"partsupp", "ps_suppkey"},
      {"orders", "o_custkey"},     {"supplier", "s_nationkey"},
      {"customer", "c_nationkey"},
  };
  return spec;
}

PartitionSpec DmvPartitionSpec() {
  PartitionSpec spec;
  // Everything keyed by car id co-partitions; owner/dealer/violation
  // replicate (small dimensions).
  spec.keys = {{"car", 0},
               {"registration", 1},
               {"accident", 1},
               {"insurance", 1},
               {"inspection", 1}};
  spec.indexes = {
      {"owner", "o_id"},
      {"car", "c_id"},
      {"car", "c_owner_id"},
      {"violation", "v_owner_id"},
  };
  return spec;
}

PartitionSpec ToyPartitionSpec() {
  PartitionSpec spec;
  // orders.o_id and items.i_order share the order-id domain.
  spec.keys = {{"orders", 0}, {"items", 0}};
  return spec;
}

Result<std::vector<KeyRange>> ComputeRanges(const Catalog& full,
                                            const PartitionSpec& spec,
                                            int num_shards) {
  if (num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (spec.keys.empty()) {
    return Status::InvalidArgument("partition spec has no key tables");
  }
  int64_t min_key = std::numeric_limits<int64_t>::max();
  int64_t max_key = std::numeric_limits<int64_t>::min();
  for (const PartitionSpec::TableKey& key : spec.keys) {
    const Table* table = full.GetTable(key.table);
    if (table == nullptr) {
      return Status::NotFound("partitioned table '" + key.table +
                              "' not in catalog");
    }
    const TableSnapshot snap = table->Snapshot();
    for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
      if (!snap.alive(rid)) continue;
      const Value& v = snap.row(rid)[static_cast<size_t>(key.column)];
      if (v.is_null()) continue;
      const int64_t k = v.AsInt();
      min_key = std::min(min_key, k);
      max_key = std::max(max_key, k);
    }
  }
  if (min_key > max_key) {
    return Status::InvalidArgument("partition-key domain is empty");
  }
  // Half-open cover of [min_key, max_key]; the last shard takes the tail.
  const int64_t span = max_key - min_key + 1;
  const int64_t step = std::max<int64_t>(1, span / num_shards);
  std::vector<KeyRange> ranges;
  ranges.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    KeyRange r;
    r.lo = min_key + step * s;
    r.hi = s == num_shards - 1 ? max_key + 1 : min_key + step * (s + 1);
    if (r.lo > max_key + 1) r.lo = max_key + 1;
    if (r.hi < r.lo) r.hi = r.lo;
    ranges.push_back(r);
  }
  return ranges;
}

Status BuildShardCatalog(const Catalog& full, const PartitionSpec& spec,
                         const std::vector<KeyRange>& ranges, int shard,
                         int histogram_buckets, Catalog* out) {
  if (shard < 0 || shard >= static_cast<int>(ranges.size())) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range (%d ranges)", shard,
                  static_cast<int>(ranges.size())));
  }
  const KeyRange& range = ranges[static_cast<size_t>(shard)];
  for (const std::string& name : full.TableNames()) {
    const Table* src = full.GetTable(name);
    Table copy(name, src->schema());
    const int key_col = spec.KeyColumn(name);
    const TableSnapshot snap = src->Snapshot();
    if (key_col < 0) {
      copy.Reserve(snap.live_rows());
    }
    for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
      if (!snap.alive(rid)) continue;
      const Row& row = snap.row(rid);
      if (key_col < 0) {
        copy.AppendRow(row);
        continue;
      }
      const Value& v = row[static_cast<size_t>(key_col)];
      if (!v.is_null() && range.Contains(v.AsInt())) copy.AppendRow(row);
    }
    Status s = out->AddTable(std::move(copy));
    if (!s.ok()) return s;
  }
  // Shard-local statistics: the shard's optimizer-facing metadata must
  // describe the shard's data, not the global table.
  out->AnalyzeAll(histogram_buckets);
  for (const auto& [table, column] : spec.indexes) {
    Status s = out->CreateIndex(table, column);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace popdb::dist
