#ifndef POPDB_DIST_COORDINATOR_H_
#define POPDB_DIST_COORDINATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/pop.h"
#include "dist/partition.h"
#include "dist/split.h"
#include "net/client_pool.h"
#include "net/server.h"
#include "opt/optimizer.h"
#include "runtime/metrics.h"
#include "runtime/query_service.h"

namespace popdb::dist {

/// Knobs for the scatter-gather coordinator.
struct CoordinatorConfig {
  /// Shard endpoints; shard i must serve the i-th partition range.
  std::vector<net::Endpoint> shards;
  PartitionSpec partition;
  OptimizerConfig optimizer;
  PopConfig pop;
  net::ClientConnectOptions connect;
  int64_t batch_rows = 4096;       ///< row_batch size requested of shards.
  double poll_interval_ms = 20.0;  ///< Cancellation/deadline poll period.
};

/// Scatter-gather executor with cluster-level progressive optimization.
///
/// The coordinator optimizes the full query against its own (global)
/// catalog, splits the plan into a shard fragment plus a gather recipe
/// (dist/split.h), scales the fragment's cardinalities and validity ranges
/// to one shard's share, places CHECK operators on the scaled fragment, and
/// scatters the identical fragment to every shard over the wire protocol's
/// `subplan` request. Shards stream row batches back; the coordinator
/// merges them per the gather recipe.
///
/// When any shard's CHECK fires (a per-shard cardinality left its scaled
/// validity range), the shard ships a check_violation event plus every
/// cardinality observation its aborted execution can justify. The
/// coordinator cancels the remaining shards, aggregates the per-shard
/// observations into global cardinalities (partitioned subplans sum across
/// shards; replicated-only subplans take the max), feeds them into its
/// feedback cache, and re-optimizes the *global* plan — the cluster-level
/// analogue of the paper's optimize-check-reoptimize loop. The final
/// attempt runs check-free to guarantee termination.
///
/// Thread safe: concurrent Execute() calls share only the connection pool
/// and metrics.
class Coordinator : public DistributedBackend,
                    public net::ClusterObservability {
 public:
  /// `catalog` is the coordinator's global catalog (full tables, used only
  /// for optimization — never scanned). Not owned; must outlive this.
  Coordinator(const Catalog& catalog, CoordinatorConfig config);

  /// True when the query can run scatter-gather (dist/split.h
  /// IsShardable); anything else falls back to local execution.
  bool CanExecute(const QuerySpec& query) const override;

  /// Runs `query` across the shards. `cancel` is polled and propagated to
  /// every in-flight shard subquery (fan-out cancellation); `feedback` (may
  /// be null) is seeded from and absorbed into across executions; `stats`
  /// receives one AttemptInfo per global attempt — including a merged
  /// per-shard EXPLAIN ANALYZE profile and per-shard timing breakdown.
  /// `info` carries the query id and trace token propagated to every shard
  /// subplan so the cluster trace stitches into one timeline.
  Result<std::vector<Row>> Execute(const QuerySpec& query,
                                   CancelToken* cancel,
                                   QueryFeedbackStore* feedback,
                                   ExecutionStats* stats,
                                   const DistQueryInfo& info = {}) override;

  /// net::ClusterObservability: harvests every shard's span dump over the
  /// pool and stitches it with the coordinator's own spans into one Chrome
  /// trace (pid 0 = coordinator, pid i+1 = shard i). Unreachable shards
  /// are skipped — a partial cluster trace beats none.
  Result<std::string> ClusterTraceJson() override;

  /// net::ClusterObservability: scrapes every reachable shard's metrics
  /// and appends them to `local_text` with shard="N" labels.
  Result<std::string> FederatedMetricsText(
      const std::string& local_text) override;

  /// Registers the coordinator's metrics (popdb_dist_*) in `registry`
  /// (typically the query service's). Call once, before Execute.
  void RegisterMetrics(MetricsRegistry* registry);

  int num_shards() const { return static_cast<int>(config_.shards.size()); }

  /// Test/bench knob: shrinks the row_batch size so cancellation and
  /// failure injection reliably land mid-stream.
  void set_batch_rows(int64_t rows) { config_.batch_rows = rows; }

 private:
  struct ShardOutcome;
  struct ScatterState;

  /// One gather thread: runs the subplan on shard `i`, streaming rows and
  /// events into `state`. `trace_token` tags the gather span so it stitches
  /// with the shard-side subplan span.
  void GatherFromShard(int shard, const std::string& payload,
                       const std::string& trace_token, ScatterState* state);

  /// Best-effort cancel of every in-flight shard subquery (fresh control
  /// connections; the streaming connections are busy).
  void CancelShards(ScatterState* state);

  const Catalog& catalog_;
  CoordinatorConfig config_;
  net::ClientPool pool_;

  // Metrics (registry-owned; null until RegisterMetrics).
  Gauge* shards_up_ = nullptr;
  Counter* queries_total_ = nullptr;
  Counter* reopts_total_ = nullptr;
  Counter* shard_errors_total_ = nullptr;
  Histogram* scatter_latency_ = nullptr;
  /// Per-shard series (one element per endpoint, labeled shard="i").
  std::vector<Counter*> shard_rows_total_;
  std::vector<Histogram*> shard_latency_;
  /// Straggler lag: slowest minus fastest shard wall time per round.
  Histogram* shard_lag_ = nullptr;
};

}  // namespace popdb::dist

#endif  // POPDB_DIST_COORDINATOR_H_
