#ifndef POPDB_DIST_PARTITION_H_
#define POPDB_DIST_PARTITION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace popdb::dist {

/// How a dataset is laid out across shards: the tables in `keys` are
/// co-partitioned by contiguous ranges of one shared integer key domain
/// (e.g. TPC-H orders and lineitem both on the order key), every other
/// table is fully replicated on every shard. Co-partitioning is what makes
/// shard-local joins on the partition key exhaustive: a key's rows from
/// every partitioned table land on the same shard.
struct PartitionSpec {
  struct TableKey {
    std::string table;
    int column = 0;  ///< Partition-key column index in the table schema.
  };
  std::vector<TableKey> keys;
  /// (table, column-name) indexes to rebuild on each shard catalog.
  std::vector<std::pair<std::string, std::string>> indexes;

  bool IsPartitioned(const std::string& table) const;
  /// Partition-key column of `table`, or -1 when the table is replicated.
  int KeyColumn(const std::string& table) const;
};

/// Built-in specs for the datasets popdb_server can host.
PartitionSpec TpchPartitionSpec();
PartitionSpec DmvPartitionSpec();
PartitionSpec ToyPartitionSpec();

/// Half-open key interval [lo, hi) owned by one shard.
struct KeyRange {
  int64_t lo = 0;
  int64_t hi = 0;

  bool Contains(int64_t key) const { return key >= lo && key < hi; }
};

/// Splits the partition-key domain observed in `full` (min/max over every
/// partitioned table's key column) into `num_shards` contiguous ranges;
/// the last range absorbs the tail so the union covers the domain.
Result<std::vector<KeyRange>> ComputeRanges(const Catalog& full,
                                            const PartitionSpec& spec,
                                            int num_shards);

/// Builds shard `shard`'s catalog from the full catalog: partitioned
/// tables keep only the rows whose key falls in `ranges[shard]`,
/// replicated tables are copied whole, statistics are recomputed over the
/// shard-local data and the spec's indexes are rebuilt.
Status BuildShardCatalog(const Catalog& full, const PartitionSpec& spec,
                         const std::vector<KeyRange>& ranges, int shard,
                         int histogram_buckets, Catalog* out);

}  // namespace popdb::dist

#endif  // POPDB_DIST_PARTITION_H_
