#include "dist/shard.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/json.h"
#include "common/span.h"
#include "core/executor_builder.h"
#include "core/explain.h"
#include "core/pop.h"
#include "dist/plan_json.h"

namespace popdb::dist {

namespace {

void AppendFiniteOrNull(double v, JsonWriter* w) {
  if (std::isfinite(v)) {
    w->Double(v);
  } else {
    w->Null();
  }
}

std::string ViolationJson(const ReoptSignal& signal) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("check_violation");
  w.Key("edge_set").Int(static_cast<int64_t>(signal.edge_set));
  w.Key("observed_rows").Double(signal.observed_rows);
  w.Key("exact").Bool(signal.exact);
  w.Key("flavor").Int(static_cast<int64_t>(signal.flavor));
  w.Key("check_lo");
  AppendFiniteOrNull(signal.check_lo, &w);
  w.Key("check_hi");
  AppendFiniteOrNull(signal.check_hi, &w);
  w.EndObject();
  return w.str();
}

std::string ObservationsJson(const std::vector<EdgeObservation>& obs) {
  JsonWriter w;
  w.BeginArray();
  for (const EdgeObservation& o : obs) {
    w.BeginObject();
    w.Key("set").Int(static_cast<int64_t>(o.set));
    w.Key("rows").Double(o.rows);
    w.Key("exact").Bool(o.exact);
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

}  // namespace

ShardExecutor::ShardExecutor(const Catalog& catalog,
                             ShardExecutorConfig config)
    : catalog_(catalog), config_(config) {}

net::SubplanBackend::RunResult ShardExecutor::Run(
    const JsonValue& request, CancelToken* cancel,
    const std::function<bool(const std::vector<Row>&)>& emit) {
  RunResult result;

  const JsonValue* query_json = request.Find("query");
  const JsonValue* plan_json = request.Find("plan");
  if (query_json == nullptr || plan_json == nullptr) {
    result.status = Status::InvalidArgument(
        "subplan request needs \"query\" and \"plan\"");
    result.outcome = "error";
    return result;
  }
  Result<QuerySpec> query = QuerySpecFromJson(*query_json);
  if (!query.ok()) {
    result.status = query.status();
    result.outcome = "error";
    return result;
  }
  result.query_name = query.value().name();
  Result<std::shared_ptr<PlanNode>> plan = PlanFromJson(*plan_json);
  if (!plan.ok()) {
    result.status = plan.status();
    result.outcome = "error";
    return result;
  }

  int64_t batch_rows =
      request.GetInt("batch_rows", config_.default_batch_rows);
  if (batch_rows < 1) batch_rows = config_.default_batch_rows;
  if (batch_rows > config_.max_batch_rows) {
    batch_rows = config_.max_batch_rows;
  }

  ExecutorBuilder builder(catalog_, query.value(),
                          /*already_returned=*/nullptr,
                          /*offer_hsjn_builds=*/false);
  Result<BuiltPlan> built = builder.Build(*plan.value());
  if (!built.ok()) {
    result.status = built.status();
    result.outcome = "error";
    return result;
  }

  ExecContext ctx;
  ctx.params = query.value().params();
  ctx.mem_rows = config_.mem_rows;
  ctx.cancel = cancel;
  ctx.batch_rows =
      request.GetInt("exec_batch_rows", config_.exec_batch_rows);

  // Hand-rolled RunToCompletion that streams batches as rows are produced
  // (a shard result must not buffer: the coordinator merges N streams).
  const double exec_start = NowMs();
  TRACE_SPAN_NAMED(exec_span, "subplan_execute", "dist");
  const std::string trace_token = request.GetString("trace_token", "");
  if (!trace_token.empty()) {
    exec_span.SetLabel(std::string_view(trace_token));
  }
  Operator* root = built.value().root.get();
  ExecStatus status = root->Open(&ctx);
  bool sink_broken = false;
  std::vector<Row> batch;
  // Flushes exact wire-batch-size frames so the stream framing is
  // independent of the execution batch size.
  const auto flush_full = [&]() -> bool {
    while (static_cast<int64_t>(batch.size()) >= batch_rows) {
      std::vector<Row> wire(
          std::make_move_iterator(batch.begin()),
          std::make_move_iterator(batch.begin() + batch_rows));
      batch.erase(batch.begin(), batch.begin() + batch_rows);
      result.rows_sent += static_cast<int64_t>(wire.size());
      if (!emit(wire)) return false;
    }
    return true;
  };
  if (status == ExecStatus::kOk) {
    if (ctx.batch_rows > 1) {
      RowBatch exec_batch;
      while (true) {
        status = root->NextBatch(&ctx, &exec_batch);
        if (status != ExecStatus::kRow) break;
        exec_batch.MoveRowsInto(&batch);
        if (!flush_full()) {
          sink_broken = true;
          break;
        }
      }
    } else {
      Row row;
      while (true) {
        status = root->Next(&ctx, &row);
        if (status != ExecStatus::kRow) break;
        batch.push_back(row);
        if (!flush_full()) {
          sink_broken = true;
          break;
        }
      }
    }
  }
  root->Close(&ctx);
  result.execute_ms = NowMs() - exec_start;
  // EXPLAIN ANALYZE snapshot of the executed fragment (estimates next to
  // actuals, sampled timings); the coordinator merges it per shard and in
  // aggregate under its gather node.
  result.profile_json = ProfileToJsonString(ProfileOperatorTree(*root));

  if (sink_broken) {
    result.status = Status::Cancelled("client connection lost mid-stream");
    result.outcome = "cancelled";
    return result;
  }

  switch (status) {
    case ExecStatus::kEof:
      if (!batch.empty()) {
        result.rows_sent += static_cast<int64_t>(batch.size());
        if (!emit(batch)) {
          result.status =
              Status::Cancelled("client connection lost mid-stream");
          result.outcome = "cancelled";
          return result;
        }
      }
      result.outcome = "ok";
      break;
    case ExecStatus::kReoptimize:
      // The coordinator discards every row of this attempt on violation,
      // so no cross-wire compensation is needed.
      result.outcome = "reoptimize";
      result.violation_json = ViolationJson(ctx.reopt);
      break;
    case ExecStatus::kCancelled:
      if (cancel != nullptr && cancel->reason() == CancelReason::kDeadline) {
        result.status =
            Status::DeadlineExceeded("subplan exceeded its deadline");
        result.outcome = "deadline";
      } else {
        result.status = Status::Cancelled("subplan cancelled");
        result.outcome = "cancelled";
      }
      break;
    case ExecStatus::kError:
      result.status = Status::Internal(ctx.error.empty()
                                           ? "subplan execution failed"
                                           : ctx.error);
      result.outcome = "error";
      break;
    default:
      result.status = Status::Internal("unexpected executor status");
      result.outcome = "error";
      break;
  }

  // Everything the (possibly aborted) run learned about true per-shard
  // cardinalities; the coordinator aggregates these across shards into
  // global feedback for its re-optimization.
  result.observations_json =
      ObservationsJson(CollectEdgeObservations(ctx, built.value()));
  return result;
}

}  // namespace popdb::dist
