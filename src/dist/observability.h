#ifndef POPDB_DIST_OBSERVABILITY_H_
#define POPDB_DIST_OBSERVABILITY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace popdb::dist {

/// One process's contribution to a stitched cluster trace: its name (shown
/// as the Perfetto process row), its local Chrome trace_event JSON dump,
/// and the offset to add to its timestamps so they line up with the
/// coordinator's clock.
struct ProcessTrace {
  std::string name;        ///< e.g. "coordinator", "shard 0 @127.0.0.1:4001".
  std::string trace_json;  ///< SpanTracer::ExportChromeTrace() output.
  int64_t ts_offset_us = 0;
};

/// Merges per-process Chrome trace dumps into one trace_event document:
/// process `i` of `procs` becomes pid `i`, gets a `process_name` metadata
/// event, and every one of its events is re-emitted with `pid` rewritten
/// and `ts` shifted by its offset. Events keep their original tid, so span
/// nesting within each process is preserved. A process whose dump fails to
/// parse makes the whole stitch fail (the caller decides what to drop).
Result<std::string> StitchChromeTrace(const std::vector<ProcessTrace>& procs);

/// Appends per-shard Prometheus expositions to `local_text`, injecting a
/// `shard="<label>"` label into every sample line (comment lines pass
/// through). `shards` pairs the label value with the shard's exposition.
std::string FederateMetricsText(
    const std::string& local_text,
    const std::vector<std::pair<std::string, std::string>>& shards);

}  // namespace popdb::dist

#endif  // POPDB_DIST_OBSERVABILITY_H_
