// Quickstart: build a small database, run a query whose cardinality the
// optimizer underestimates by orders of magnitude (correlated predicates
// break the independence assumption), and watch progressive optimization
// detect the error mid-flight, re-optimize with the actual cardinality,
// and reuse the already materialized intermediate result.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "core/pop.h"
#include "opt/query.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"

using namespace popdb;  // NOLINT: example brevity.

int main() {
  // ---- 1. Create and populate a catalog: orders (40k) and items (120k).
  // ORDERS carries correlated columns: `subclass` functionally determines
  // `class`, and `region` is determined by `subclass` too. A predicate on
  // all three looks astronomically selective to an independence-assuming
  // optimizer, but actually selects ~100 rows.
  Catalog catalog;
  Rng rng(1);
  {
    Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                   {"o_class", ValueType::kInt},
                                   {"o_subclass", ValueType::kInt},
                                   {"o_region", ValueType::kInt},
                                   {"o_total", ValueType::kDouble}}));
    for (int64_t i = 0; i < 40000; ++i) {
      const int64_t subclass = rng.UniformInt(0, 399);
      orders.AppendRow({Value::Int(i), Value::Int(subclass / 20),
                        Value::Int(subclass), Value::Int(subclass % 50),
                        Value::Double(rng.UniformDouble() * 100)});
    }
    POPDB_DCHECK(catalog.AddTable(std::move(orders)).ok());
  }
  {
    Table items("items", Schema({{"i_order", ValueType::kInt},
                                 {"i_qty", ValueType::kInt}}));
    for (int64_t i = 0; i < 120000; ++i) {
      items.AppendRow({Value::Int(rng.UniformInt(0, 39999)),
                       Value::Int(rng.UniformInt(1, 50))});
    }
    POPDB_DCHECK(catalog.AddTable(std::move(items)).ok());
  }
  catalog.AnalyzeAll();

  // ---- 2. The query: restrict ORDERS on the three correlated columns and
  // join ITEMS. Estimated cardinality: 40000/(20*400*50) = 0.1 rows.
  // Actual: ~100 rows. The optimizer therefore picks a nested-loop join
  // that scans ITEMS once per order — a disaster at the true cardinality.
  const int64_t subclass = 123;
  QuerySpec query("quickstart");
  const int o = query.AddTable("orders");
  const int it = query.AddTable("items");
  query.AddJoin({o, 0}, {it, 0});  // o_id = i_order
  query.AddPred({o, 1}, PredKind::kEq, Value::Int(subclass / 20));
  query.AddPred({o, 2}, PredKind::kEq, Value::Int(subclass));
  query.AddPred({o, 3}, PredKind::kEq, Value::Int(subclass % 50));
  query.AddGroupBy({o, 3});
  query.AddAgg(AggFunc::kSum, {it, 1});
  query.AddAgg(AggFunc::kCount);

  // ---- 3. Execute with progressive optimization.
  ProgressiveExecutor pop(catalog, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  Result<std::vector<Row>> rows = pop.Execute(query, &stats);
  if (!rows.ok()) {
    std::fprintf(stderr, "error: %s\n", rows.status().ToString().c_str());
    return 1;
  }

  std::printf("result rows: %zu\n", rows.value().size());
  std::printf("re-optimizations: %d\n\n", stats.reopts);
  for (size_t a = 0; a < stats.attempts.size(); ++a) {
    const AttemptInfo& at = stats.attempts[a];
    std::printf("--- attempt %zu (optimize %.2f ms, execute %.2f ms)\n",
                a + 1, at.optimize_ms, at.execute_ms);
    std::printf("%s", at.plan_text.c_str());
    if (at.reoptimized) {
      std::printf(
          ">>> %s check on edge 0x%llx fired: observed %lld rows, "
          "check range [%.3g, %.3g] -> re-optimizing\n\n",
          CheckFlavorName(at.signal.flavor),
          static_cast<unsigned long long>(at.signal.edge_set),
          static_cast<long long>(at.signal.observed_rows), at.signal.check_lo,
          at.signal.check_hi);
    }
  }

  // ---- 4. Compare with classic static execution (no checkpoints).
  ExecutionStats static_stats;
  Result<std::vector<Row>> srows = pop.ExecuteStatic(query, &static_stats);
  POPDB_DCHECK(srows.ok() && srows.value().size() == rows.value().size());
  std::printf(
      "\nwork units: static=%lld  progressive=%lld  (speedup %.1fx)\n",
      static_cast<long long>(static_stats.total_work),
      static_cast<long long>(stats.total_work),
      static_cast<double>(static_stats.total_work) /
          static_cast<double>(stats.total_work));
  return 0;
}
