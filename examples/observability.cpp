// Observability tour: EXPLAIN ANALYZE, span tracing with Perfetto export,
// and the Prometheus metrics endpoint --
//   1. run a query whose cardinality estimate is badly off and read the
//      EXPLAIN ANALYZE output: per-operator est vs. actual rows, Q-error,
//      and the CHECK firing that triggered re-optimization,
//   2. capture the same run as spans and write popdb_trace.json -- open it
//      at https://ui.perfetto.dev (or chrome://tracing) to see optimizer
//      phases, operator lifetimes, and checkpoint instants on a timeline,
//   3. serve the workload through QueryService and print the Prometheus
//      text exposition a /metrics endpoint would return.
//
// Build & run:  cmake --build build && ./build/examples/observability

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "common/span.h"
#include "runtime/query_service.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

// Orders/items with correlated predicates (same trap as runtime_service):
// the independence assumption underestimates the filtered orders
// cardinality ~200x, so the first progressive run re-optimizes.
void BuildCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"clazz", ValueType::kInt},
                                 {"subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

QuerySpec TrapQuery(const std::string& name) {
  QuerySpec q(name);
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

}  // namespace

int main() {
  Catalog catalog;
  BuildCatalog(&catalog);

  // ---- 1. EXPLAIN ANALYZE: est vs. actual per operator, per attempt.
  std::printf("==== EXPLAIN ANALYZE ====\n");
  {
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    Result<std::string> text = exec.ExplainAnalyze(TrapQuery("explained"));
    POPDB_DCHECK(text.ok());
    std::fputs(text.value().c_str(), stdout);
    std::printf(
        "\nReading it: 'est_rows' is the optimizer's guess, 'act_rows' what\n"
        "the operator produced, 'q' their Q-error. Attempt 1 stops at the\n"
        "CHECK firing; attempt 2 replans with the observed cardinality\n"
        "(note the q values collapsing to ~1).\n\n");
  }

  // ---- 2. Span capture + Chrome-trace export for Perfetto.
  std::printf("==== span capture ====\n");
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    ExecutionStats stats;
    POPDB_DCHECK(exec.Execute(TrapQuery("traced"), &stats).ok());
    std::printf("captured %lld events over %d attempt(s)\n",
                static_cast<long long>(tracer.event_count()),
                static_cast<int>(stats.attempts.size()));
  }
  tracer.Disable();
  {
    // Write under POPDB_TRACE_DIR (or the system temp dir) so running the
    // example from a source checkout never drops artifacts into the tree.
    const char* dir = std::getenv("POPDB_TRACE_DIR");
    if (dir == nullptr) dir = std::getenv("TMPDIR");
    if (dir == nullptr) dir = "/tmp";
    const std::string path = std::string(dir) + "/popdb_trace.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      const std::string json = tracer.ExportChromeTrace();
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf(
          "wrote %s -- drag it into https://ui.perfetto.dev and look for:\n"
          "  - 'optimize' / 'execute_attempt' spans, one pair per attempt,\n"
          "  - operator spans (TBSCAN, HSJN, GRPBY...) nested inside,\n"
          "  - 'checkpoint_fired' / 'check_fired' instants at the "
          "re-optimization point.\n\n",
          path.c_str());
    }
  }
  tracer.Clear();

  // ---- 3. Prometheus metrics from the query service.
  std::printf("==== /metrics ====\n");
  ServiceConfig config;
  config.num_workers = 2;
  QueryService service(catalog, config);
  POPDB_DCHECK(service.ExecuteSync(TrapQuery("svc_a")).status.ok());
  POPDB_DCHECK(service.ExecuteSync(TrapQuery("svc_b")).status.ok());
  service.Shutdown();
  std::fputs(service.MetricsText().c_str(), stdout);
  std::printf(
      "\nHighlights: popdb_checks_fired_by_flavor_total breaks firings out\n"
      "by checkpoint flavor, popdb_operator_qerror is the estimate-quality\n"
      "distribution, popdb_feedback_seed_hits shows query 2 planning with\n"
      "query 1's learned cardinalities.\n");
  return 0;
}
