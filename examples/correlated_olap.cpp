// Scenario from the paper's Section 6 case study: complex OLAP queries
// over a database with correlated columns (a department-of-motor-vehicles
// schema). The optimizer multiplies the selectivities of predicates on
// MAKE, MODEL and WEIGHT as if they were independent — but MODEL
// functionally determines the other two, so the estimate is off by three
// orders of magnitude and the chosen nested-loop plan is a disaster.
//
// Build & run:  cmake --build build && ./build/examples/correlated_olap

#include <cstdio>

#include "common/status.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

using namespace popdb;  // NOLINT: example brevity.

int main() {
  std::printf("generating the correlated DMV database...\n");
  Catalog catalog;
  dmv::GenConfig gen;
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());

  // A decision-support query: count registrations and insurance policies
  // of cars of one make, whose owners live in the make's typical zip
  // band. Both the MAKE=..AND..ZIP-band pair (join correlation) and the
  // MAKE/MODEL pair (functional dependency) violate independence.
  QuerySpec q("correlated_olap");
  const int car = q.AddTable("car");
  const int owner = q.AddTable("owner");
  const int reg = q.AddTable("registration");
  const int ins = q.AddTable("insurance");
  q.AddJoin({car, dmv::Car::kOwnerId}, {owner, dmv::Owner::kId});
  q.AddJoin({reg, dmv::Registration::kCarId}, {car, dmv::Car::kId});
  q.AddJoin({ins, dmv::Insurance::kCarId}, {car, dmv::Car::kId});
  const int64_t model = 777;
  const int64_t make = model / dmv::kModelsPerMake;
  const int64_t band = dmv::kNumZips / dmv::kNumMakes;
  q.AddPred({car, dmv::Car::kMake}, PredKind::kEq, Value::Int(make));
  q.AddPred({car, dmv::Car::kModel}, PredKind::kEq, Value::Int(model));
  q.AddPred({owner, dmv::Owner::kZip}, PredKind::kBetween,
            Value::Int(make * band), Value::Int((make + 1) * band - 1));
  q.AddGroupBy({owner, dmv::Owner::kState});
  q.AddAgg(AggFunc::kCount);

  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});

  std::printf("\n--- the optimizer's view ---\n");
  Result<OptimizedPlan> planned = exec.Plan(q);
  POPDB_DCHECK(planned.ok());
  std::printf("%s", planned.value().root->ToString().c_str());
  std::printf(
      "(note the estimated cardinalities: the full join is expected to\n"
      "produce %.3g rows; the real count is orders of magnitude larger\n"
      "because the restricted columns are correlated)\n",
      planned.value().root->children[0]->card);

  ExecutionStats sstat;
  POPDB_DCHECK(exec.ExecuteStatic(q, &sstat).ok());
  std::printf("\nstatic execution:      %10lld work units (%.1f ms)\n",
              static_cast<long long>(sstat.total_work), sstat.total_ms);

  ExecutionStats pstat;
  POPDB_DCHECK(exec.Execute(q, &pstat).ok());
  std::printf("progressive execution: %10lld work units (%.1f ms), "
              "%d re-optimization(s)\n",
              static_cast<long long>(pstat.total_work), pstat.total_ms,
              pstat.reopts);
  for (const AttemptInfo& at : pstat.attempts) {
    if (at.reoptimized) {
      std::printf(
          "  checkpoint fired: %s observed %lld rows against range "
          "[%.3g, %.3g]\n",
          CheckFlavorName(at.signal.flavor),
          static_cast<long long>(at.signal.observed_rows), at.signal.check_lo,
          at.signal.check_hi);
    }
  }
  std::printf("speedup: %.1fx\n",
              static_cast<double>(sstat.total_work) /
                  static_cast<double>(pstat.total_work));
  return 0;
}
