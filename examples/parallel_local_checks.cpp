// Simulation of the paper's Section 7 future-work idea for parallel
// DBMSs: instead of globally synchronizing cardinality counters across
// nodes, each node checks and re-optimizes its own partial plan locally
// between global synchronization points.
//
// We simulate a shared-nothing system by hash-partitioning the CAR fact
// table across N "nodes" (each node = its own catalog holding one
// partition plus replicated dimension tables, a common layout for star
// schemas). Every node runs the same query with its own
// ProgressiveExecutor. One partition is engineered to be skewed: its local
// check is certain to fire, so that node re-optimizes while nodes with
// well-estimated partitions (usually) keep their plans — the selling point
// of local checking.
//
// Build & run:  cmake --build build && ./build/examples/parallel_local_checks

#include <cstdio>

#include "common/rng.h"
#include "core/pop.h"
#include "opt/query.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

constexpr int kNodes = 4;
constexpr int64_t kFactRows = 32000;
constexpr int64_t kDimRows = 16000;

Schema FactSchema() {
  return Schema({{"f_dim", ValueType::kInt},
                 {"f_class", ValueType::kInt},
                 {"f_subclass", ValueType::kInt}});
}

Schema DimSchema() {
  return Schema({{"d_id", ValueType::kInt}, {"d_tag", ValueType::kInt}});
}

/// Builds node `node`'s catalog: its partition of FACT plus the replicated
/// DIM table. Partition `kNodes - 1` is skewed: the correlated restriction
/// keeps far more rows there than the partition-local statistics expect.
void BuildNodeCatalog(int node, Catalog* catalog) {
  Rng rng(100 + node);
  Table fact("fact", FactSchema());
  const bool skewed = node == kNodes - 1;
  for (int64_t i = 0; i < kFactRows / kNodes; ++i) {
    // class and subclass are independent in the steady data, so the
    // estimates are accurate on ordinary partitions...
    int64_t clazz = rng.UniformInt(0, 19);
    int64_t sub = rng.UniformInt(0, 199);
    // ...but the skewed partition carries a hot correlated pair.
    if (skewed && rng.Bernoulli(0.05)) {
      clazz = 7;
      sub = 77;
    }
    fact.AppendRow({Value::Int(rng.UniformInt(0, kDimRows - 1)),
                    Value::Int(clazz), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(fact)).ok());

  Table dim("dim", DimSchema());
  Rng dim_rng(7);  // Identical replica on every node.
  for (int64_t i = 0; i < kDimRows; ++i) {
    dim.AppendRow({Value::Int(i), Value::Int(dim_rng.UniformInt(0, 99))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(dim)).ok());
  catalog->AnalyzeAll();
}

QuerySpec NodeQuery() {
  QuerySpec q("node_fragment");
  const int f = q.AddTable("fact");
  const int d = q.AddTable("dim");
  q.AddJoin({f, 0}, {d, 0});
  q.AddPred({f, 1}, PredKind::kEq, Value::Int(7));   // class = 7
  q.AddPred({f, 2}, PredKind::kEq, Value::Int(77));  // subclass = 77
  q.AddGroupBy({f, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

}  // namespace

int main() {
  std::printf(
      "simulating %d shared-nothing nodes, FACT hash-partitioned, DIM "
      "replicated;\nnode %d carries a skewed partition.\n\n",
      kNodes, kNodes - 1);

  int64_t total_rows = 0;
  int total_reopts = 0;
  for (int node = 0; node < kNodes; ++node) {
    Catalog catalog;
    BuildNodeCatalog(node, &catalog);
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec.Execute(NodeQuery(), &stats);
    POPDB_DCHECK(rows.ok());
    int64_t node_count = 0;
    for (const Row& r : rows.value()) node_count += r[1].AsInt();
    total_rows += node_count;
    total_reopts += stats.reopts;
    std::printf(
        "node %d: %8lld result rows, %7lld work units, %d local "
        "re-optimization(s)%s\n",
        node, static_cast<long long>(node_count),
        static_cast<long long>(stats.total_work), stats.reopts,
        stats.reopts > 0 ? "  <- local check fired; this node re-planned" : "");
  }
  std::printf(
      "\nglobal result (sum over nodes): %lld rows; %d local "
      "re-optimizations total.\n",
      static_cast<long long>(total_rows), total_reopts);
  std::printf(
      "No global counter synchronization was needed: each node's CHECK\n"
      "guards only its partition, per the paper's Section 7 sketch.\n");
  return 0;
}
