// Eager checking with deferred compensation (paper Section 3.3): a
// pipelined SPJ query starts returning rows to the application before a
// mid-pipeline CHECK discovers the plan is out of its validity range. The
// re-optimized plan compensates with an anti-join against the side table
// of already-returned rows, so the application sees no duplicates.
//
// Build & run:  cmake --build build && ./build/examples/pipelined_ecdc

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

using namespace popdb;  // NOLINT: example brevity.

int main() {
  Catalog catalog;
  dmv::GenConfig gen;
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());

  // Pipelined SPJ query (no aggregation): list registrations of a
  // correlated car restriction. The optimizer underestimates the
  // restriction ~50x.
  QuerySpec q("pipelined_spj");
  const int car = q.AddTable("car");
  const int owner = q.AddTable("owner");
  const int reg = q.AddTable("registration");
  q.AddJoin({car, dmv::Car::kOwnerId}, {owner, dmv::Owner::kId});
  q.AddJoin({reg, dmv::Registration::kCarId}, {car, dmv::Car::kId});
  const int64_t model = 444;
  q.AddPred({car, dmv::Car::kMake}, PredKind::kEq,
            Value::Int(model / dmv::kModelsPerMake));
  q.AddPred({car, dmv::Car::kModel}, PredKind::kEq, Value::Int(model));
  q.AddProjection({owner, dmv::Owner::kName});
  q.AddProjection({reg, dmv::Registration::kYear});

  // Enable only the pipelined flavor: ECDC checks stream rows to the user
  // while counting; nothing is buffered.
  PopConfig pop;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.enable_ecdc = true;

  ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(q, &stats);
  POPDB_DCHECK(rows.ok());

  std::printf("re-optimizations: %d\n", stats.reopts);
  for (size_t a = 0; a < stats.attempts.size(); ++a) {
    const AttemptInfo& at = stats.attempts[a];
    std::printf("attempt %zu: %lld row(s) pipelined to the application%s\n",
                a + 1, static_cast<long long>(at.rows_returned),
                at.reoptimized ? ", then the ECDC check fired" : "");
  }

  // Correctness check: compare against the static execution.
  Result<std::vector<Row>> expected = exec.ExecuteStatic(q);
  POPDB_DCHECK(expected.ok());
  auto canon = [](std::vector<Row> rs) {
    std::vector<std::string> out;
    out.reserve(rs.size());
    for (const Row& r : rs) out.push_back(RowToString(r));
    std::sort(out.begin(), out.end());
    return out;
  };
  const bool equal = canon(rows.value()) == canon(expected.value());
  std::printf(
      "\ntotal rows: %zu (static run: %zu) — %s\n", rows.value().size(),
      expected.value().size(),
      equal ? "identical multisets, no duplicates despite mid-stream "
              "re-optimization"
            : "MISMATCH (bug!)");
  return equal ? 0 : 1;
}
