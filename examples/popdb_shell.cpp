// Interactive SQL shell over the progressive-optimization engine.
//
//   ./build/examples/popdb_shell [tpch|dmv|toy] ['SQL...']
//
// With a SQL argument it runs one statement and exits; otherwise it reads
// statements from stdin (terminated by ';' or end of line). Commands:
//   EXPLAIN SELECT ...   print the chosen plan with validity ranges
//   \static              toggle static (no-POP) execution
//   \quit                exit
//
// Example session:
//   $ ./build/examples/popdb_shell dmv
//   popdb> SELECT o_state, COUNT(*) FROM car c, owner o
//          WHERE c.c_owner_id = o.o_id AND c_make = 38 AND c_model = 777
//          GROUP BY o_state;
//   ... rows ..., 1 re-optimization

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "sql/binder.h"
#include "storage/csv.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "tpch/tpch_gen.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

void BuildToy(Catalog* catalog) {
  Rng rng(7);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_subclass", ValueType::kInt},
                                 {"o_total", ValueType::kDouble}}));
  for (int64_t i = 0; i < 20000; ++i) {
    const int64_t sub = rng.UniformInt(0, 399);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 20), Value::Int(sub),
                      Value::Double(rng.UniformDouble() * 100)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"i_qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 60000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 19999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

void PrintTables(const Catalog& catalog) {
  std::printf("tables:\n");
  for (const std::string& name : catalog.TableNames()) {
    const Table* t = catalog.GetTable(name);
    std::printf("  %-14s %8lld rows  (%s)\n", name.c_str(),
                static_cast<long long>(t->num_rows()),
                t->schema().ToString().c_str());
  }
}

int RunStatement(const Catalog& catalog, const std::string& sql,
                 bool use_pop) {
  Result<sql::BoundStatement> bound = sql::ParseSql(catalog, sql);
  if (!bound.ok()) {
    std::printf("error: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  if (bound.value().explain) {
    Result<OptimizedPlan> plan = exec.Plan(bound.value().query);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", plan.value().root->ToString().c_str());
    std::printf("estimated cost %.4g, %lld candidate plans considered\n",
                plan.value().est_cost,
                static_cast<long long>(plan.value().candidates));
    return 0;
  }
  ExecutionStats stats;
  Result<std::vector<Row>> rows =
      use_pop ? exec.Execute(bound.value().query, &stats)
              : exec.ExecuteStatic(bound.value().query, &stats);
  if (!rows.ok()) {
    std::printf("error: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  const size_t show = std::min<size_t>(rows.value().size(), 20);
  for (size_t i = 0; i < show; ++i) {
    std::printf("%s\n", RowToString(rows.value()[i]).c_str());
  }
  if (show < rows.value().size()) {
    std::printf("... (%zu more rows)\n", rows.value().size() - show);
  }
  std::printf("%zu row(s) in %.1f ms, %lld work units", rows.value().size(),
              stats.total_ms, static_cast<long long>(stats.total_work));
  if (stats.reopts > 0) {
    std::printf(", %d re-optimization(s)", stats.reopts);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "toy";
  Catalog catalog;
  if (dataset == "tpch") {
    std::printf("loading TPC-H...\n");
    POPDB_DCHECK(tpch::BuildCatalog(tpch::GenConfig{}, &catalog).ok());
  } else if (dataset == "dmv") {
    std::printf("loading the DMV case-study database...\n");
    POPDB_DCHECK(dmv::BuildCatalog(dmv::GenConfig{}, &catalog).ok());
  } else {
    std::printf("loading the toy database (orders/items, correlated)...\n");
    BuildToy(&catalog);
  }
  PrintTables(catalog);

  if (argc > 2) {
    return RunStatement(catalog, argv[2], /*use_pop=*/true);
  }

  bool use_pop = true;
  std::printf(
      "\nType SQL (single line, ';' optional), EXPLAIN SELECT ... for "
      "plans,\n\\static to toggle POP, \\load <table> <csv> to import "
      "data, \\quit to exit.\n");
  std::string line;
  while (true) {
    std::printf("popdb%s> ", use_pop ? "" : " (static)");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\static") {
      use_pop = !use_pop;
      std::printf("progressive optimization %s\n", use_pop ? "ON" : "OFF");
      continue;
    }
    if (line.rfind("\\load ", 0) == 0) {
      // \load <table> <path.csv>
      std::istringstream args(line.substr(6));
      std::string table, path;
      args >> table >> path;
      if (table.empty() || path.empty()) {
        std::printf("usage: \\load <table> <path.csv>\n");
        continue;
      }
      const Status s = LoadCsvFile(table, path, &catalog);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("loaded %lld rows into %s\n",
                    static_cast<long long>(
                        catalog.GetTable(table)->num_rows()),
                    table.c_str());
      }
      continue;
    }
    RunStatement(catalog, line, use_pop);
  }
  return 0;
}
