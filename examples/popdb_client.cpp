// popdb-client: command-line client for popdb-server.
//
//   ./build/examples/popdb_client --port N 'SELECT ...'   run one query
//   ./build/examples/popdb_client --port N 'INSERT ...'   run one DML
//                                                         statement
//   ./build/examples/popdb_client --port-file PATH --smoke
//   ./build/examples/popdb_client --port-file PATH --mixed-smoke
//
// Observability commands:
//   --metrics            print the server's Prometheus exposition
//   --cluster-metrics    federated exposition (coordinator + shard="N")
//   --trace-dump FILE    write the server's span dump (or, against a
//                        coordinator, the stitched cluster trace) to FILE
//                        as Chrome trace_event JSON for Perfetto
//   --log [N]            print the last N structured query-log entries
//                        (JSON array; N omitted = all retained)
//
// --smoke drives the scripted CI session against a --allow-shutdown
// server: handshake, a streamed query, an async query cancelled
// mid-flight, a trace round trip, a metrics scrape, a query-log fetch,
// then a clean remote shutdown. Exits 0 only if every step behaved.
//
// --mixed-smoke drives the mixed OLTP/OLAP CI session against a
// --allow-shutdown toy-dataset server: concurrent writers and analytical
// readers, asserting a write-triggered stats-version bump, a plan-cache
// invalidation from the stats bump, and at least one CHECK-triggered
// re-optimization caused by the write drift.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "net/client.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

int ReadPortFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return -1;
  int port = -1;
  if (std::fscanf(f, "%d", &port) != 1) port = -1;
  std::fclose(f);
  return port;
}

#define SMOKE_CHECK(cond, what)                               \
  do {                                                        \
    if (!(cond)) {                                            \
      std::fprintf(stderr, "smoke FAIL: %s\n", what);         \
      return 1;                                               \
    }                                                         \
    std::printf("smoke ok: %s\n", what);                      \
  } while (0)

/// The scripted session ci.sh runs against a loopback toy-dataset server.
int RunSmoke(const std::string& host, int port) {
  Result<net::Client> connected = net::Client::Connect(host, port);
  SMOKE_CHECK(connected.ok(), "connect + hello handshake");
  net::Client client = std::move(connected).TakeValue();
  SMOKE_CHECK(client.session_id() > 0, "server assigned a session id");

  // 1. A streamed aggregation (small batches force several row_batch
  // frames).
  net::ClientQueryOptions opts;
  opts.batch_rows = 2;
  net::ClientQueryResult agg = client.Query(
      "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class ORDER BY 1",
      opts);
  SMOKE_CHECK(agg.status.ok(), "aggregation query succeeds");
  SMOKE_CHECK(agg.rows.size() == 20, "aggregation returns 20 groups");
  SMOKE_CHECK(agg.query_id >= 0, "query_done carries the query id");

  // 2. Cancel an async wide join mid-flight from the same connection.
  Result<int64_t> async_id = client.QueryAsync(
      "SELECT a_k, COUNT(*) FROM big_a, big_b WHERE a_k = b_k GROUP BY a_k");
  SMOKE_CHECK(async_id.ok(), "async submission accepted");
  Result<bool> cancelled = client.Cancel(async_id.value());
  SMOKE_CHECK(cancelled.ok() && cancelled.value(),
              "cancel found the in-flight query");
  net::ClientQueryResult doomed = client.Wait(async_id.value());
  if (doomed.status.ok()) {
    // Lost the race: the join finished before the cancel landed. The
    // cancel path was still exercised (found == true above).
    std::printf("smoke note: wide join finished before the cancel\n");
  } else {
    SMOKE_CHECK(doomed.status.code() == StatusCode::kCancelled,
                "cancelled query reports kCancelled");
  }

  // 3. Trace round trip for the finished aggregation.
  Result<std::string> trace = client.Trace(agg.query_id);
  SMOKE_CHECK(trace.ok(), "trace round trip");
  SMOKE_CHECK(trace.value().find("\"query_id\"") != std::string::npos,
              "trace JSON has query_id");

  // 4. Metrics scrape: engine and net families both present.
  Result<std::string> metrics = client.Metrics();
  SMOKE_CHECK(metrics.ok(), "metrics scrape");
  SMOKE_CHECK(
      metrics.value().find("popdb_net_connections_total") != std::string::npos,
      "metrics include the net family");
  SMOKE_CHECK(
      metrics.value().find("popdb_admission_queue_depth") !=
          std::string::npos,
      "metrics include the engine family");

  // 4b. Structured query log: the finished aggregation must be recorded.
  Result<std::string> log = client.QueryLogTail(/*limit=*/0);
  SMOKE_CHECK(log.ok(), "query log fetch");
  SMOKE_CHECK(log.value().find("\"plan_digest\"") != std::string::npos,
              "query log entries carry a plan digest");

  // 5. SQL errors come back as protocol errors, not disconnects.
  net::ClientQueryResult bad = client.Query("SELECT FROM nowhere");
  SMOKE_CHECK(!bad.status.ok(), "malformed SQL is rejected");
  net::ClientQueryResult still_alive = client.Query(
      "SELECT COUNT(*) FROM items");
  SMOKE_CHECK(still_alive.status.ok(),
              "connection survives the SQL error");

  // 6. Remote shutdown (the server was started with --allow-shutdown).
  SMOKE_CHECK(client.RequestShutdown().ok(), "shutdown request honored");
  std::printf("smoke PASS\n");
  return 0;
}

/// First-keyword DML detection, so the plain-SQL command line picks the
/// right wire flow (write_done vs. row_batch stream).
bool LooksLikeDml(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string word;
  while (i < sql.size() && std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[i++]))));
  }
  return word == "INSERT" || word == "UPDATE" || word == "DELETE";
}

/// First sample value of `name` in a Prometheus exposition; -1 if absent.
double MetricValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    // Match whole sample lines only (skip HELP/TYPE and prefixed names).
    if (pos > 0 && text[pos - 1] != '\n') {
      pos += name.size();
      continue;
    }
    const char next = pos + name.size() < text.size()
                          ? text[pos + name.size()]
                          : '\n';
    if (next != ' ' && next != '{') {
      pos += name.size();
      continue;
    }
    const size_t space = text.find(' ', pos + name.size());
    if (space == std::string::npos) return -1.0;
    return std::atof(text.c_str() + space + 1);
  }
  return -1.0;
}

/// The mixed OLTP/OLAP scripted session ci.sh runs against a loopback
/// toy-dataset server (see the file comment).
int RunMixedSmoke(const std::string& host, int port) {
  Result<net::Client> connected = net::Client::Connect(host, port);
  SMOKE_CHECK(connected.ok(), "connect + hello handshake");
  net::Client client = std::move(connected).TakeValue();

  // The repeat-submission side of the mix (plan-cache assertions).
  const std::string kAnalytical =
      "SELECT COUNT(*) FROM orders, items "
      "WHERE o_id = i_order AND o_subclass = 5";
  // The drift probe: o_subclass = 250 does not exist in the seed data, so
  // the optimizer plans this scan as ~empty. The writers below move the
  // distribution into exactly that region — the checkpoint guarding the
  // edge must catch it.
  const std::string kDriftQuery =
      "SELECT COUNT(*) FROM orders, items "
      "WHERE o_id = i_order AND o_subclass = 250";

  net::ClientQueryResult warm = client.Query(kAnalytical);
  SMOKE_CHECK(warm.status.ok(), "analytical query runs before any write");
  client.Query(kAnalytical);  // Settle feedback; outcome asserted below.
  net::ClientQueryResult probe = client.Query(kDriftQuery);
  SMOKE_CHECK(probe.status.ok() && probe.reopts == 0,
              "drift probe is stable before any write");

  // Drift phase: 350 rows into the believed-empty o_subclass = 250
  // region, deliberately below the stats fold threshold (10% of 4000 rows
  // = 400) so statistics stay stale while the data has moved.
  bool folded_early = false;
  for (int stmt = 0; stmt < 7; ++stmt) {
    std::string sql = "INSERT INTO orders VALUES ";
    for (int r = 0; r < 50; ++r) {
      if (r > 0) sql += ", ";
      const int64_t id = 50000 + stmt * 50 + r;
      sql += "(" + std::to_string(id) + ", 9, 250)";
    }
    net::ClientWriteResult w = client.Write(sql);
    SMOKE_CHECK(w.status.ok(), "batched INSERT applies");
    SMOKE_CHECK(w.affected_rows == 50, "write_done reports 50 rows");
    folded_early = folded_early || w.stats_folded;
  }
  SMOKE_CHECK(!folded_early, "350-row churn stays below the fold threshold");

  // The stale-stats run: the checkpoint guarding the drifted edge must
  // fire and trigger a re-optimization.
  net::ClientQueryResult drifted = client.Query(kDriftQuery);
  SMOKE_CHECK(drifted.status.ok(), "analytical query survives write drift");
  SMOKE_CHECK(drifted.reopts >= 1,
              "write drift triggered a CHECK re-optimization");

  // Cross the threshold: churn reaches 450 >= 400, so one of these two
  // statements must fold statistics and bump the catalog stats version.
  bool folded = false;
  for (int stmt = 0; stmt < 2; ++stmt) {
    std::string sql = "INSERT INTO orders VALUES ";
    for (int r = 0; r < 50; ++r) {
      if (r > 0) sql += ", ";
      const int64_t id = 51000 + stmt * 50 + r;
      sql += "(" + std::to_string(id) + ", 9, 250)";
    }
    net::ClientWriteResult w = client.Write(sql);
    SMOKE_CHECK(w.status.ok(), "threshold-crossing INSERT applies");
    folded = folded || w.stats_folded;
  }
  SMOKE_CHECK(folded, "accumulated churn folded stats (version bump)");

  // The bumped stats version must evict the cached analytical plan...
  net::ClientQueryResult refreshed = client.Query(kAnalytical);
  SMOKE_CHECK(refreshed.status.ok(), "analytical query runs on fresh stats");
  Result<std::string> metrics = client.Metrics();
  SMOKE_CHECK(metrics.ok(), "metrics scrape");
  SMOKE_CHECK(
      MetricValue(metrics.value(),
                  "popdb_plan_cache_stale_stats_evictions_total") >= 1,
      "stats bump evicted a cached plan");
  SMOKE_CHECK(MetricValue(metrics.value(),
                          "popdb_stats_version_bumps_total") >= 1,
              "stats-version bump counter moved");
  SMOKE_CHECK(metrics.value().find("popdb_writes_total") != std::string::npos,
              "per-op write counters exported");

  // ... and repeats settle back into plan-cache hits.
  bool hit = false;
  for (int i = 0; i < 5 && !hit; ++i) {
    net::ClientQueryResult repeat = client.Query(kAnalytical);
    SMOKE_CHECK(repeat.status.ok(), "settling repeat runs");
    hit = repeat.plan_cache == "hit";
  }
  SMOKE_CHECK(hit, "repeat query recovered a plan-cache hit after settling");

  // UPDATE and DELETE round trips (payment-style delta, then cleanup).
  net::ClientWriteResult upd =
      client.Write("UPDATE items SET i_qty = i_qty + 1 WHERE i_order = 5");
  SMOKE_CHECK(upd.status.ok() && upd.affected_rows >= 1,
              "UPDATE delta applies");
  net::ClientWriteResult del =
      client.Write("DELETE FROM orders WHERE o_id = 50000");
  SMOKE_CHECK(del.status.ok() && del.affected_rows == 1,
              "DELETE removes one row");

  // The structured log distinguishes reads from writes and carries
  // affected-row counts (what `popdb_client --log` shows for this mix).
  Result<std::string> log = client.QueryLogTail(/*limit=*/0);
  SMOKE_CHECK(log.ok(), "query log fetch");
  SMOKE_CHECK(log.value().find("\"kind\":\"write\"") != std::string::npos,
              "query log records write statements");
  SMOKE_CHECK(log.value().find("\"affected_rows\"") != std::string::npos,
              "query log carries affected-row counts");

  // Concurrency burst: writers and analytical readers on separate
  // connections at the same time; every request must come back clean.
  std::vector<std::thread> burst;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 2; ++t) {
    burst.emplace_back([&host, port, t, &failures] {
      Result<net::Client> c = net::Client::Connect(host, port);
      if (!c.ok()) {
        failures[t] = 1;
        return;
      }
      for (int i = 0; i < 15; ++i) {
        const int64_t order = 52000 + t * 100 + i;
        net::ClientWriteResult w = c.value().Write(
            "INSERT INTO items VALUES (" + std::to_string(order) + ", 7)");
        if (!w.status.ok() || w.affected_rows != 1) {
          failures[t] = 1;
          return;
        }
      }
      c.value().Close();
    });
  }
  for (int t = 2; t < 4; ++t) {
    burst.emplace_back([&host, port, t, &failures, &kAnalytical] {
      Result<net::Client> c = net::Client::Connect(host, port);
      if (!c.ok()) {
        failures[t] = 1;
        return;
      }
      for (int i = 0; i < 8; ++i) {
        net::ClientQueryResult r = c.value().Query(kAnalytical);
        if (!r.status.ok()) {
          failures[t] = 1;
          return;
        }
      }
      c.value().Close();
    });
  }
  for (std::thread& t : burst) t.join();
  SMOKE_CHECK(failures[0] == 0 && failures[1] == 0,
              "concurrent writers all applied");
  SMOKE_CHECK(failures[2] == 0 && failures[3] == 0,
              "concurrent analytical readers all succeeded");

  SMOKE_CHECK(client.RequestShutdown().ok(), "shutdown request honored");
  std::printf("mixed smoke PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  bool smoke = false;
  bool mixed_smoke = false;
  bool metrics = false;
  bool cluster_metrics = false;
  bool log = false;
  int64_t log_limit = 0;
  std::string trace_dump;
  std::string sql;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port = ReadPortFile(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--mixed-smoke") {
      mixed_smoke = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--cluster-metrics") {
      cluster_metrics = true;
    } else if (arg == "--trace-dump" && i + 1 < argc) {
      trace_dump = argv[++i];
    } else if (arg == "--log") {
      log = true;
      if (i + 1 < argc && std::atoll(argv[i + 1]) > 0) {
        log_limit = std::atoll(argv[++i]);
      }
    } else if (arg[0] != '-') {
      sql = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr,
                 "usage: popdb_client (--port N | --port-file PATH) "
                 "[--smoke | --mixed-smoke | --metrics | --cluster-metrics | "
                 "--trace-dump FILE | --log [N] | 'SQL']\n");
    return 2;
  }

  if (smoke) return RunSmoke(host, port);
  if (mixed_smoke) return RunMixedSmoke(host, port);
  if (sql.empty() && !metrics && !cluster_metrics && !log &&
      trace_dump.empty()) {
    std::fprintf(stderr,
                 "nothing to do: pass --smoke, an observability command, "
                 "or a SQL string\n");
    return 2;
  }

  Result<net::Client> connected = net::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(connected).TakeValue();

  if (metrics || cluster_metrics) {
    Result<std::string> text = client.Metrics(cluster_metrics);
    if (!text.ok()) {
      std::fprintf(stderr, "metrics: %s\n", text.status().ToString().c_str());
      return 1;
    }
    std::fputs(text.value().c_str(), stdout);
    return 0;
  }
  if (log) {
    Result<std::string> entries = client.QueryLogTail(log_limit);
    if (!entries.ok()) {
      std::fprintf(stderr, "query log: %s\n",
                   entries.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", entries.value().c_str());
    return 0;
  }
  if (!trace_dump.empty()) {
    // Try the stitched cluster trace first (coordinator); fall back to the
    // server's own span dump against a plain or shard server.
    net::ClientSpansOptions span_opts;
    span_opts.cluster = true;
    Result<net::ClientSpanDump> dump = client.Spans(span_opts);
    if (!dump.ok() && dump.status().code() == StatusCode::kUnimplemented) {
      span_opts.cluster = false;
      dump = client.Spans(span_opts);
    }
    if (!dump.ok()) {
      std::fprintf(stderr, "spans: %s\n", dump.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(trace_dump.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_dump.c_str());
      return 1;
    }
    std::fputs(dump.value().trace_json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes of trace JSON to %s\n",
                dump.value().trace_json.size(), trace_dump.c_str());
    return 0;
  }

  if (LooksLikeDml(sql)) {
    net::ClientWriteResult w = client.Write(sql);
    if (!w.status.ok()) {
      std::fprintf(stderr, "error: %s\n", w.status.ToString().c_str());
      return 1;
    }
    std::printf("%lld row(s) affected, stats_version=%lld%s, %.1f ms\n",
                static_cast<long long>(w.affected_rows),
                static_cast<long long>(w.stats_version),
                w.stats_folded ? " (stats folded)" : "", w.total_ms);
    return 0;
  }

  net::ClientQueryResult result = client.Query(sql);
  if (!result.status.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status.ToString().c_str());
    return 1;
  }
  for (const Row& row : result.rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("%zu row(s), outcome=%s, %d re-opt(s), %.1f ms\n",
              result.rows.size(), result.outcome.c_str(), result.reopts,
              result.total_ms);
  return 0;
}
