// popdb-client: command-line client for popdb-server.
//
//   ./build/examples/popdb_client --port N 'SELECT ...'   run one query
//   ./build/examples/popdb_client --port-file PATH --smoke
//
// Observability commands:
//   --metrics            print the server's Prometheus exposition
//   --cluster-metrics    federated exposition (coordinator + shard="N")
//   --trace-dump FILE    write the server's span dump (or, against a
//                        coordinator, the stitched cluster trace) to FILE
//                        as Chrome trace_event JSON for Perfetto
//   --log [N]            print the last N structured query-log entries
//                        (JSON array; N omitted = all retained)
//
// --smoke drives the scripted CI session against a --allow-shutdown
// server: handshake, a streamed query, an async query cancelled
// mid-flight, a trace round trip, a metrics scrape, a query-log fetch,
// then a clean remote shutdown. Exits 0 only if every step behaved.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "net/client.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

int ReadPortFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return -1;
  int port = -1;
  if (std::fscanf(f, "%d", &port) != 1) port = -1;
  std::fclose(f);
  return port;
}

#define SMOKE_CHECK(cond, what)                               \
  do {                                                        \
    if (!(cond)) {                                            \
      std::fprintf(stderr, "smoke FAIL: %s\n", what);         \
      return 1;                                               \
    }                                                         \
    std::printf("smoke ok: %s\n", what);                      \
  } while (0)

/// The scripted session ci.sh runs against a loopback toy-dataset server.
int RunSmoke(const std::string& host, int port) {
  Result<net::Client> connected = net::Client::Connect(host, port);
  SMOKE_CHECK(connected.ok(), "connect + hello handshake");
  net::Client client = std::move(connected).TakeValue();
  SMOKE_CHECK(client.session_id() > 0, "server assigned a session id");

  // 1. A streamed aggregation (small batches force several row_batch
  // frames).
  net::ClientQueryOptions opts;
  opts.batch_rows = 2;
  net::ClientQueryResult agg = client.Query(
      "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class ORDER BY 1",
      opts);
  SMOKE_CHECK(agg.status.ok(), "aggregation query succeeds");
  SMOKE_CHECK(agg.rows.size() == 20, "aggregation returns 20 groups");
  SMOKE_CHECK(agg.query_id >= 0, "query_done carries the query id");

  // 2. Cancel an async wide join mid-flight from the same connection.
  Result<int64_t> async_id = client.QueryAsync(
      "SELECT a_k, COUNT(*) FROM big_a, big_b WHERE a_k = b_k GROUP BY a_k");
  SMOKE_CHECK(async_id.ok(), "async submission accepted");
  Result<bool> cancelled = client.Cancel(async_id.value());
  SMOKE_CHECK(cancelled.ok() && cancelled.value(),
              "cancel found the in-flight query");
  net::ClientQueryResult doomed = client.Wait(async_id.value());
  if (doomed.status.ok()) {
    // Lost the race: the join finished before the cancel landed. The
    // cancel path was still exercised (found == true above).
    std::printf("smoke note: wide join finished before the cancel\n");
  } else {
    SMOKE_CHECK(doomed.status.code() == StatusCode::kCancelled,
                "cancelled query reports kCancelled");
  }

  // 3. Trace round trip for the finished aggregation.
  Result<std::string> trace = client.Trace(agg.query_id);
  SMOKE_CHECK(trace.ok(), "trace round trip");
  SMOKE_CHECK(trace.value().find("\"query_id\"") != std::string::npos,
              "trace JSON has query_id");

  // 4. Metrics scrape: engine and net families both present.
  Result<std::string> metrics = client.Metrics();
  SMOKE_CHECK(metrics.ok(), "metrics scrape");
  SMOKE_CHECK(
      metrics.value().find("popdb_net_connections_total") != std::string::npos,
      "metrics include the net family");
  SMOKE_CHECK(
      metrics.value().find("popdb_admission_queue_depth") !=
          std::string::npos,
      "metrics include the engine family");

  // 4b. Structured query log: the finished aggregation must be recorded.
  Result<std::string> log = client.QueryLogTail(/*limit=*/0);
  SMOKE_CHECK(log.ok(), "query log fetch");
  SMOKE_CHECK(log.value().find("\"plan_digest\"") != std::string::npos,
              "query log entries carry a plan digest");

  // 5. SQL errors come back as protocol errors, not disconnects.
  net::ClientQueryResult bad = client.Query("SELECT FROM nowhere");
  SMOKE_CHECK(!bad.status.ok(), "malformed SQL is rejected");
  net::ClientQueryResult still_alive = client.Query(
      "SELECT COUNT(*) FROM items");
  SMOKE_CHECK(still_alive.status.ok(),
              "connection survives the SQL error");

  // 6. Remote shutdown (the server was started with --allow-shutdown).
  SMOKE_CHECK(client.RequestShutdown().ok(), "shutdown request honored");
  std::printf("smoke PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  bool smoke = false;
  bool metrics = false;
  bool cluster_metrics = false;
  bool log = false;
  int64_t log_limit = 0;
  std::string trace_dump;
  std::string sql;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port = ReadPortFile(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--cluster-metrics") {
      cluster_metrics = true;
    } else if (arg == "--trace-dump" && i + 1 < argc) {
      trace_dump = argv[++i];
    } else if (arg == "--log") {
      log = true;
      if (i + 1 < argc && std::atoll(argv[i + 1]) > 0) {
        log_limit = std::atoll(argv[++i]);
      }
    } else if (arg[0] != '-') {
      sql = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr,
                 "usage: popdb_client (--port N | --port-file PATH) "
                 "[--smoke | --metrics | --cluster-metrics | "
                 "--trace-dump FILE | --log [N] | 'SQL']\n");
    return 2;
  }

  if (smoke) return RunSmoke(host, port);
  if (sql.empty() && !metrics && !cluster_metrics && !log &&
      trace_dump.empty()) {
    std::fprintf(stderr,
                 "nothing to do: pass --smoke, an observability command, "
                 "or a SQL string\n");
    return 2;
  }

  Result<net::Client> connected = net::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(connected).TakeValue();

  if (metrics || cluster_metrics) {
    Result<std::string> text = client.Metrics(cluster_metrics);
    if (!text.ok()) {
      std::fprintf(stderr, "metrics: %s\n", text.status().ToString().c_str());
      return 1;
    }
    std::fputs(text.value().c_str(), stdout);
    return 0;
  }
  if (log) {
    Result<std::string> entries = client.QueryLogTail(log_limit);
    if (!entries.ok()) {
      std::fprintf(stderr, "query log: %s\n",
                   entries.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", entries.value().c_str());
    return 0;
  }
  if (!trace_dump.empty()) {
    // Try the stitched cluster trace first (coordinator); fall back to the
    // server's own span dump against a plain or shard server.
    net::ClientSpansOptions span_opts;
    span_opts.cluster = true;
    Result<net::ClientSpanDump> dump = client.Spans(span_opts);
    if (!dump.ok() && dump.status().code() == StatusCode::kUnimplemented) {
      span_opts.cluster = false;
      dump = client.Spans(span_opts);
    }
    if (!dump.ok()) {
      std::fprintf(stderr, "spans: %s\n", dump.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(trace_dump.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_dump.c_str());
      return 1;
    }
    std::fputs(dump.value().trace_json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes of trace JSON to %s\n",
                dump.value().trace_json.size(), trace_dump.c_str());
    return 0;
  }

  net::ClientQueryResult result = client.Query(sql);
  if (!result.status.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status.ToString().c_str());
    return 1;
  }
  for (const Row& row : result.rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("%zu row(s), outcome=%s, %d re-opt(s), %.1f ms\n",
              result.rows.size(), result.outcome.c_str(), result.reopts,
              result.total_ms);
  return 0;
}
