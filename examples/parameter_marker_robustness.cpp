// Scenario from the paper's Section 5.1: a query compiled once with
// parameter markers is executed with many different bindings. The
// optimizer planned for one default selectivity; progressive optimization
// keeps execution near-optimal across all bindings.
//
// Build & run:  cmake --build build && ./build/examples/parameter_marker_robustness

#include <cstdio>

#include "common/status.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

using namespace popdb;  // NOLINT: example brevity.

int main() {
  std::printf("generating TPC-H data...\n");
  Catalog catalog;
  tpch::GenConfig gen;
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  OptimizerConfig opt;
  opt.estimator.default_range_selectivity = 0.01;  // The compiled default.
  opt.cost.mem_rows = 8000;

  std::printf(
      "\nTPC-H Q10 with 'l_sel < ?' — the optimizer sees only a marker\n"
      "and plans for %.0f%% selectivity regardless of the binding.\n\n",
      opt.estimator.default_range_selectivity * 100);

  for (int sel : {5, 50, 95}) {
    QuerySpec q = tpch::MakeQ10Selectivity(sel, /*use_marker=*/true);
    ProgressiveExecutor exec(catalog, opt, PopConfig{});

    ExecutionStats pop_stats, static_stats, best_stats;
    POPDB_DCHECK(exec.Execute(q, &pop_stats).ok());
    POPDB_DCHECK(exec.ExecuteStatic(q, &static_stats).ok());
    QuerySpec q_known = tpch::MakeQ10Selectivity(sel, /*use_marker=*/false);
    POPDB_DCHECK(exec.ExecuteStatic(q_known, &best_stats).ok());

    std::printf("binding => %d%% actual selectivity\n", sel);
    std::printf("  static plan (marker):   %8lld work units\n",
                static_cast<long long>(static_stats.total_work));
    std::printf("  POP (marker):           %8lld work units, %d reopt(s)\n",
                static_cast<long long>(pop_stats.total_work),
                pop_stats.reopts);
    std::printf("  optimal (literal seen): %8lld work units\n\n",
                static_cast<long long>(best_stats.total_work));
  }
  std::printf(
      "POP stays close to the plan the optimizer would have chosen had it\n"
      "known the literal — the paper's 'insurance policy' for compiled\n"
      "queries.\n");
  return 0;
}
