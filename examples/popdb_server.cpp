// popdb-server: the network front end as a standalone process. Loads a
// dataset, stands up a QueryService, and serves the length-prefixed JSON
// wire protocol on a TCP port until interrupted (or, with
// --allow-shutdown, until a client sends a `shutdown` request).
//
//   ./build/examples/popdb_server [tpch|dmv|toy]
//       [--port N]         bind port (default 0 = ephemeral)
//       [--port-file PATH] write the resolved port to PATH (for scripts)
//       [--workers N]      connection workers (default 4)
//       [--allow-shutdown] honor the wire `shutdown` request
//       [--trace]          enable span tracing from startup (the wire
//                          `spans` request can also toggle it later)
//       [--quiet]          suppress startup chatter
//
// Distributed modes (docs/WIRE.md):
//
//   Shard: serve one key-range partition of the dataset and execute
//   `subplan` requests for a coordinator.
//       --shard-index K --shard-count N   [--subplan-stall-ms X]
//
//   Coordinator: scatter-gather across running shards; shard i of the
//   --shards list must serve partition i.
//       --coordinator --shards host:port,host:port,...
//
//   One-command cluster: fork N shard children (ephemeral ports), then
//   run the coordinator against them; children are reaped on shutdown.
//       --spawn-shards N   [--subplan-stall-ms X]
//
// Talk to it with ./build/examples/popdb_client or any client speaking the
// protocol documented in src/net/wire.h.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/span.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/shard.h"
#include "dmv/dmv_gen.h"
#include "net/server.h"
#include "tpch/tpch_gen.h"
#include "txn/write_manager.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

std::sig_atomic_t g_interrupted = 0;

void OnSignal(int) { g_interrupted = 1; }

// Same correlated toy schema as the runtime_service example: orders/items
// re-optimize under POP, big_a/big_b joins run long enough to cancel.
void BuildToy(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"i_qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  Table big_a("big_a",
              Schema({{"a_k", ValueType::kInt}, {"a_v", ValueType::kInt}}));
  Table big_b("big_b",
              Schema({{"b_k", ValueType::kInt}, {"b_v", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    big_a.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
    big_b.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(big_a)).ok());
  POPDB_DCHECK(catalog->AddTable(std::move(big_b)).ok());
  catalog->AnalyzeAll();
}

void BuildDataset(const std::string& dataset, bool quiet, Catalog* catalog) {
  if (dataset == "tpch") {
    if (!quiet) std::printf("loading TPC-H...\n");
    POPDB_DCHECK(tpch::BuildCatalog(tpch::GenConfig{}, catalog).ok());
  } else if (dataset == "dmv") {
    if (!quiet) std::printf("loading the DMV case-study database...\n");
    POPDB_DCHECK(dmv::BuildCatalog(dmv::GenConfig{}, catalog).ok());
  } else {
    if (!quiet) std::printf("loading the toy database...\n");
    BuildToy(catalog);
  }
}

dist::PartitionSpec DatasetPartitionSpec(const std::string& dataset) {
  if (dataset == "tpch") return dist::TpchPartitionSpec();
  if (dataset == "dmv") return dist::DmvPartitionSpec();
  return dist::ToyPartitionSpec();
}

bool ParseEndpoints(const std::string& list,
                    std::vector<net::Endpoint>* out) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return false;
    }
    net::Endpoint ep;
    ep.host = item.substr(0, colon);
    ep.port = std::atoi(item.c_str() + colon + 1);
    if (ep.port <= 0) return false;
    out->push_back(std::move(ep));
    start = comma + 1;
  }
  return !out->empty();
}

int WritePortFile(const std::string& path, int port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "%d\n", port);
  std::fclose(f);
  return 0;
}

struct Options {
  std::string dataset = "toy";
  std::string port_file;
  net::NetServerConfig net_config;
  bool quiet = false;
  int shard_index = -1;
  int shard_count = 0;
  bool coordinator = false;
  std::string shard_list;
  int spawn_shards = 0;
  double subplan_stall_ms = 0.0;
  int64_t dist_batch_rows = 0;  ///< 0 = coordinator default.
  bool trace = false;           ///< Enable the span tracer at startup.
};

/// Serves one partition of the dataset: the full catalog is rebuilt
/// deterministically, then filtered down to this shard's key range.
/// `port_fd`, when >= 0, receives the resolved port as one text line (the
/// parent of a forked shard reads it from a pipe).
int RunShard(const Options& opts, int port_fd) {
  Catalog full;
  BuildDataset(opts.dataset, opts.quiet, &full);
  const dist::PartitionSpec spec = DatasetPartitionSpec(opts.dataset);
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, spec, opts.shard_count);
  if (!ranges.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 ranges.status().ToString().c_str());
    return 1;
  }
  Catalog shard_catalog;
  const Status built =
      dist::BuildShardCatalog(full, spec, ranges.value(), opts.shard_index,
                              /*histogram_buckets=*/32, &shard_catalog);
  if (!built.ok()) {
    std::fprintf(stderr, "shard catalog failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }

  TraceStore traces(/*capacity=*/1024);
  ServiceConfig service_config;
  service_config.share_feedback = true;
  service_config.trace_sink = &traces;
  QueryService service(shard_catalog, service_config);

  dist::ShardExecutor backend(shard_catalog);
  net::NetServerConfig net_config = opts.net_config;
  net_config.subplan_backend = &backend;
  net_config.subplan_stall_ms = opts.subplan_stall_ms;
  net::NetServer server(&service, &traces, net_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (port_fd >= 0) {
    char buf[16];
    const int len = std::snprintf(buf, sizeof(buf), "%d\n", server.port());
    if (write(port_fd, buf, static_cast<size_t>(len)) != len) return 1;
    close(port_fd);
  }
  if (!opts.port_file.empty() &&
      WritePortFile(opts.port_file, server.port()) != 0) {
    return 1;
  }
  if (!opts.quiet) {
    std::printf("popdb-server: shard %d/%d dataset=%s port=%d\n",
                opts.shard_index, opts.shard_count, opts.dataset.c_str(),
                server.port());
    std::fflush(stdout);
  }
  while (g_interrupted == 0 && !server.WaitForShutdownRequest(200.0)) {
  }
  server.Shutdown();
  service.Shutdown(/*drain=*/false);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      opts.net_config.port = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && i + 1 < argc) {
      opts.port_file = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      opts.net_config.num_workers = std::atoi(argv[++i]);
    } else if (arg == "--allow-shutdown") {
      opts.net_config.allow_shutdown_request = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--shard-index" && i + 1 < argc) {
      opts.shard_index = std::atoi(argv[++i]);
    } else if (arg == "--shard-count" && i + 1 < argc) {
      opts.shard_count = std::atoi(argv[++i]);
    } else if (arg == "--coordinator") {
      opts.coordinator = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      opts.shard_list = argv[++i];
    } else if (arg == "--spawn-shards" && i + 1 < argc) {
      opts.spawn_shards = std::atoi(argv[++i]);
    } else if (arg == "--subplan-stall-ms" && i + 1 < argc) {
      opts.subplan_stall_ms = std::atof(argv[++i]);
    } else if (arg == "--dist-batch-rows" && i + 1 < argc) {
      opts.dist_batch_rows = std::atoll(argv[++i]);
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg[0] != '-') {
      opts.dataset = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // Forked shard children inherit the flag, so one --trace lights up the
  // whole spawned cluster.
  if (opts.trace) SpanTracer::Global().Enable();

  // ---- Shard mode: serve one partition, execute subplans.
  if (opts.shard_index >= 0 || opts.shard_count > 0) {
    if (opts.shard_index < 0 || opts.shard_count <= opts.shard_index) {
      std::fprintf(stderr,
                   "--shard-index K and --shard-count N require "
                   "0 <= K < N\n");
      return 2;
    }
    return RunShard(opts, /*port_fd=*/-1);
  }

  // ---- Spawn mode: fork shard children before any threads exist, then
  // fall through into coordinator mode against their ports.
  std::vector<pid_t> children;
  std::vector<net::Endpoint> endpoints;
  if (opts.spawn_shards > 0) {
    for (int s = 0; s < opts.spawn_shards; ++s) {
      int fds[2];
      if (pipe(fds) != 0) {
        std::perror("pipe");
        return 1;
      }
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        close(fds[0]);
        Options shard = opts;
        shard.shard_index = s;
        shard.shard_count = opts.spawn_shards;
        shard.net_config.port = 0;
        shard.port_file.clear();
        shard.quiet = true;
        _exit(RunShard(shard, fds[1]));
      }
      close(fds[1]);
      children.push_back(pid);
      std::string line;
      char c;
      while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
      close(fds[0]);
      const int port = std::atoi(line.c_str());
      if (port <= 0) {
        std::fprintf(stderr, "shard %d failed to start\n", s);
        for (const pid_t child : children) kill(child, SIGTERM);
        return 1;
      }
      endpoints.push_back({"127.0.0.1", port});
    }
    opts.coordinator = true;
  } else if (opts.coordinator) {
    if (!ParseEndpoints(opts.shard_list, &endpoints)) {
      std::fprintf(stderr,
                   "--coordinator requires --shards host:port[,...]\n");
      return 2;
    }
  }

  Catalog catalog;
  BuildDataset(opts.dataset, opts.quiet, &catalog);

  // The trace store backs the wire `trace` request: every finished query's
  // QueryTrace is retained (bounded FIFO) keyed by query id.
  TraceStore traces(/*capacity=*/1024);
  ServiceConfig service_config;
  service_config.share_feedback = true;
  service_config.trace_sink = &traces;

  std::unique_ptr<dist::Coordinator> coordinator;
  if (opts.coordinator) {
    dist::CoordinatorConfig dist_config;
    dist_config.shards = endpoints;
    dist_config.partition = DatasetPartitionSpec(opts.dataset);
    if (opts.dist_batch_rows > 0) {
      dist_config.batch_rows = opts.dist_batch_rows;
    }
    coordinator =
        std::make_unique<dist::Coordinator>(catalog, std::move(dist_config));
    service_config.dist_backend = coordinator.get();
  }

  QueryService service(catalog, service_config);

  // The write path (INSERT/UPDATE/DELETE over the wire) serves local mode
  // only: a coordinator's shards each hold their own partition copy, so a
  // coordinator-side write would silently diverge from them.
  std::unique_ptr<txn::WriteManager> writes;
  if (coordinator == nullptr) {
    writes = std::make_unique<txn::WriteManager>(&catalog);
    service.AttachWriteManager(writes.get());
  }

  net::NetServerConfig net_config = opts.net_config;
  if (coordinator != nullptr) {
    coordinator->RegisterMetrics(&service.metrics_registry());
    // Cluster observability: `spans {scope:"cluster"}` and
    // `metrics {cluster:true}` fan out to the shards through the
    // coordinator's connection pool.
    net_config.cluster = coordinator.get();
  }

  net::NetServer server(&service, &traces, net_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!opts.port_file.empty() &&
      WritePortFile(opts.port_file, server.port()) != 0) {
    return 1;
  }
  if (!opts.quiet) {
    std::printf("popdb-server: dataset=%s port=%d workers=%d%s%s\n",
                opts.dataset.c_str(), server.port(),
                opts.net_config.num_workers,
                opts.coordinator
                    ? (" (coordinator, " + std::to_string(endpoints.size()) +
                       " shards)")
                          .c_str()
                    : "",
                opts.net_config.allow_shutdown_request
                    ? " (shutdown enabled)"
                    : "");
  }
  std::fflush(stdout);

  // Serve until a signal arrives or a client asks us to stop.
  while (g_interrupted == 0 && !server.WaitForShutdownRequest(200.0)) {
  }

  if (!opts.quiet) std::printf("popdb-server: shutting down\n");
  server.Shutdown();
  service.Shutdown(/*drain=*/false);

  for (const pid_t child : children) kill(child, SIGTERM);
  for (const pid_t child : children) waitpid(child, nullptr, 0);
  return 0;
}
