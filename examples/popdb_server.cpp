// popdb-server: the network front end as a standalone process. Loads a
// dataset, stands up a QueryService, and serves the length-prefixed JSON
// wire protocol on a TCP port until interrupted (or, with
// --allow-shutdown, until a client sends a `shutdown` request).
//
//   ./build/examples/popdb_server [tpch|dmv|toy]
//       [--port N]         bind port (default 0 = ephemeral)
//       [--port-file PATH] write the resolved port to PATH (for scripts)
//       [--workers N]      connection workers (default 4)
//       [--allow-shutdown] honor the wire `shutdown` request
//       [--quiet]          suppress startup chatter
//
// Talk to it with ./build/examples/popdb_client or any client speaking the
// protocol documented in src/net/wire.h.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "dmv/dmv_gen.h"
#include "net/server.h"
#include "tpch/tpch_gen.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

std::sig_atomic_t g_interrupted = 0;

void OnSignal(int) { g_interrupted = 1; }

// Same correlated toy schema as the runtime_service example: orders/items
// re-optimize under POP, big_a/big_b joins run long enough to cancel.
void BuildToy(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"i_qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  Table big_a("big_a",
              Schema({{"a_k", ValueType::kInt}, {"a_v", ValueType::kInt}}));
  Table big_b("big_b",
              Schema({{"b_k", ValueType::kInt}, {"b_v", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    big_a.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
    big_b.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(big_a)).ok());
  POPDB_DCHECK(catalog->AddTable(std::move(big_b)).ok());
  catalog->AnalyzeAll();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "toy";
  std::string port_file;
  net::NetServerConfig net_config;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      net_config.port = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      net_config.num_workers = std::atoi(argv[++i]);
    } else if (arg == "--allow-shutdown") {
      net_config.allow_shutdown_request = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg[0] != '-') {
      dataset = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  Catalog catalog;
  if (dataset == "tpch") {
    if (!quiet) std::printf("loading TPC-H...\n");
    POPDB_DCHECK(tpch::BuildCatalog(tpch::GenConfig{}, &catalog).ok());
  } else if (dataset == "dmv") {
    if (!quiet) std::printf("loading the DMV case-study database...\n");
    POPDB_DCHECK(dmv::BuildCatalog(dmv::GenConfig{}, &catalog).ok());
  } else {
    if (!quiet) std::printf("loading the toy database...\n");
    BuildToy(&catalog);
  }

  // The trace store backs the wire `trace` request: every finished query's
  // QueryTrace is retained (bounded FIFO) keyed by query id.
  TraceStore traces(/*capacity=*/1024);
  ServiceConfig service_config;
  service_config.share_feedback = true;
  service_config.trace_sink = &traces;
  QueryService service(catalog, service_config);

  net::NetServer server(&service, &traces, net_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  if (!quiet) {
    std::printf("popdb-server: dataset=%s port=%d workers=%d%s\n",
                dataset.c_str(), server.port(), net_config.num_workers,
                net_config.allow_shutdown_request ? " (shutdown enabled)"
                                                  : "");
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // Serve until a signal arrives or a client asks us to stop.
  while (g_interrupted == 0 && !server.WaitForShutdownRequest(200.0)) {
  }

  if (!quiet) std::printf("popdb-server: shutting down\n");
  server.Shutdown();
  service.Shutdown(/*drain=*/false);
  return 0;
}
