// Runtime service tour: stand up a QueryService over a small catalog and
// walk through its moving parts --
//   1. submit queries from several client threads and wait on tickets,
//   2. watch shared re-optimization feedback teach the second run of a
//      trapped query to plan correctly (0 re-opts),
//   3. cancel a long-running query and let a deadline expire on another,
//   4. print the structured per-query JSON traces and aggregate stats.
//
// Build & run:  cmake --build build && ./build/examples/runtime_service

#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/query_service.h"

using namespace popdb;  // NOLINT: example brevity.

namespace {

// Orders/items with correlated predicates: the optimizer's independence
// assumption underestimates the filtered orders cardinality, so the first
// progressive run re-optimizes mid-query.
void BuildCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"clazz", ValueType::kInt},
                                 {"subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  // Two tables whose equi-join fans out to ~320k rows: slow enough to
  // demonstrate cancellation and deadlines.
  Table big_a("big_a",
              Schema({{"k", ValueType::kInt}, {"va", ValueType::kInt}}));
  Table big_b("big_b",
              Schema({{"k", ValueType::kInt}, {"vb", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    big_a.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
    big_b.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(big_a)).ok());
  POPDB_DCHECK(catalog->AddTable(std::move(big_b)).ok());
  catalog->AnalyzeAll();
}

QuerySpec TrappedQuery(const std::string& name) {
  QuerySpec q(name);
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

QuerySpec WideJoin(const std::string& name) {
  QuerySpec q(name);
  const int a = q.AddTable("big_a");
  const int b = q.AddTable("big_b");
  q.AddJoin({a, 0}, {b, 0});
  q.AddGroupBy({a, 0});
  q.AddAgg(AggFunc::kCount);
  return q;
}

}  // namespace

int main() {
  Catalog catalog;
  BuildCatalog(&catalog);

  CollectingTraceSink sink;
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 16;
  config.share_feedback = true;  // One feedback store for the whole service.
  config.trace_sink = &sink;
  QueryService service(catalog, config);

  // ---- 1. Concurrent submissions from client threads.
  std::printf("== concurrent clients ==\n");
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&service, c]() {
      QueryResult r = service.ExecuteSync(
          TrappedQuery("client" + std::to_string(c)));
      std::printf("client%d: %s, %zd row(s), %d re-opt(s)\n", c,
                  r.status.ok() ? "ok" : r.status.ToString().c_str(),
                  r.rows.size(), r.trace.reopts);
    });
  }
  for (std::thread& t : clients) t.join();

  // ---- 2. Shared feedback has converged: this run plans with the exact
  // cardinalities learned above and never re-optimizes.
  QueryResult warm = service.ExecuteSync(TrappedQuery("warm"));
  std::printf("warm run after shared learning: %d re-opt(s)\n",
              warm.trace.reopts);

  // ---- 3a. Explicit cancellation of a running query.
  std::printf("\n== cancellation ==\n");
  auto ticket = service.Submit(WideJoin("doomed"));
  POPDB_DCHECK(ticket.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ticket.value()->Cancel();
  const QueryResult& doomed = ticket.value()->Wait();
  std::printf("doomed:   %s\n", doomed.status.ToString().c_str());

  // ---- 3b. Deadline expiry (the deadline clock starts at submission).
  SubmitOptions opts;
  opts.deadline_ms = 5.0;
  QueryResult late = service.ExecuteSync(WideJoin("deadline"), opts);
  std::printf("deadline: %s\n", late.status.ToString().c_str());

  service.Shutdown();

  // ---- 4. Structured traces + aggregate counters.
  std::printf("\n== query traces (JSONL) ==\n");
  for (const QueryTrace& trace : sink.Drain()) {
    std::printf("%s\n", trace.ToJson().c_str());
  }
  const ServiceStatsSnapshot stats = service.Stats();
  std::printf("\n== service stats ==\n");
  std::printf("admitted=%lld completed=%lld cancelled=%lld deadline=%lld "
              "reopt_queries=%lld p50=%.2fms p95=%.2fms\n",
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.cancelled),
              static_cast<long long>(stats.deadline_expired),
              static_cast<long long>(stats.reoptimized_queries),
              stats.p50_latency_ms, stats.p95_latency_ms);

  // The smoke test (ctest) keys on this line.
  const bool ok = stats.completed == 4 && stats.cancelled == 1 &&
                  stats.deadline_expired == 1 && warm.trace.reopts == 0;
  std::printf("\nruntime_service: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
