#!/usr/bin/env bash
# CI entry point: release build + full test suite + a loopback network
# smoke (popdb_server driven by the scripted popdb_client session), a
# mixed OLTP/OLAP smoke (DML drift firing CHECK re-optimizations, stats
# folds, plan-cache recovery over the wire), a distributed smoke (2 shard
# processes + a scatter-gather coordinator, including a
# stitched-cluster-trace / federated-metrics / query-log check and a
# kill -9 of one shard mid-query), then a ThreadSanitizer build that
# hammers the concurrent pieces (runtime query service, network front
# end, morsel parallelism, shared feedback stores, parallel executors,
# write-path snapshot consistency, metrics registry, span tracer), then a
# UBSan build over the tracing/metrics/runtime/parallel/network/write
# suites.
#
# The release ctest runs everything including tests labeled "slow"
# (parallel_stress_test); use `ctest -L fast` locally for the quick loop.
# The TSan and UBSan stages run the parallel-, plan-cache-, and
# row-vs-batch differential suites in light mode (POPDB_EQUIV_LIGHT=1) —
# the full corpus sweeps are release-only.
#
# Usage: ./ci.sh [--skip-tsan] [--skip-ubsan]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_TSAN=0
SKIP_UBSAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-ubsan" ]] && SKIP_UBSAN=1
done

echo "=== release build + full ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== network smoke: popdb_server + scripted client on loopback ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./build/examples/popdb_server toy --quiet --allow-shutdown \
    --port-file "$SMOKE_DIR/port" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE_DIR/port" ]] || { echo "server never wrote its port file"; exit 1; }
./build/examples/popdb_client --port-file "$SMOKE_DIR/port" --smoke
# The smoke script ends with a wire `shutdown` request; the server must
# exit 0 on its own (clean shutdown, no leaked threads keeping it alive).
wait "$SERVER_PID"

echo "=== mixed-workload smoke: DML + analytics over the wire ==="
# Drives the write path end to end on a fresh toy server: INSERT drift
# into a believed-empty region fires a CHECK re-optimization, a
# threshold-crossing batch folds statistics and evicts cached plans, the
# repeat query recovers to cache hits, and UPDATE/DELETE, the write query
# log, write metrics, and a concurrent reader/writer burst are asserted.
./build/examples/popdb_server toy --quiet --allow-shutdown \
    --port-file "$SMOKE_DIR/mixed.port" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/mixed.port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE_DIR/mixed.port" ]] || { echo "server never wrote its port file"; exit 1; }
./build/examples/popdb_client --port-file "$SMOKE_DIR/mixed.port" --mixed-smoke
wait "$SERVER_PID"

echo "=== distributed smoke: 2 shards + coordinator, shard kill mid-query ==="
# Two shard processes (stalled row batches so a mid-query kill reliably
# lands mid-stream) and a coordinator scatter-gathering across them.
./build/examples/popdb_server toy --quiet --trace \
    --shard-index 0 --shard-count 2 --subplan-stall-ms 20 \
    --port-file "$SMOKE_DIR/shard0.port" &
SHARD0_PID=$!
./build/examples/popdb_server toy --quiet --trace \
    --shard-index 1 --shard-count 2 --subplan-stall-ms 20 \
    --port-file "$SMOKE_DIR/shard1.port" &
SHARD1_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/shard0.port" && -s "$SMOKE_DIR/shard1.port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE_DIR/shard0.port" && -s "$SMOKE_DIR/shard1.port" ]] \
    || { echo "shards never wrote their port files"; exit 1; }
# Small row batches + the per-batch stall make full-table scans take
# seconds, so the kill below reliably lands mid-stream.
./build/examples/popdb_server toy --quiet --coordinator --trace \
    --shards "127.0.0.1:$(cat "$SMOKE_DIR/shard0.port"),127.0.0.1:$(cat "$SMOKE_DIR/shard1.port")" \
    --dist-batch-rows 32 --port-file "$SMOKE_DIR/coord.port" &
COORD_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/coord.port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE_DIR/coord.port" ]] || { echo "coordinator never wrote its port file"; exit 1; }
COORD_PORT="$(cat "$SMOKE_DIR/coord.port")"

# Query mix: sharded aggregation, co-partitioned join with the correlated
# predicate trap (drives a coordinator-level re-optimization), and a
# non-shardable query that falls back to local execution.
./build/examples/popdb_client --port "$COORD_PORT" \
    "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class ORDER BY 1"
./build/examples/popdb_client --port "$COORD_PORT" \
    "SELECT o_class, SUM(i_qty), AVG(i_qty) FROM orders, items WHERE o_id = i_order AND o_class = 7 AND o_subclass = 77 GROUP BY o_class"
./build/examples/popdb_client --port "$COORD_PORT" \
    "SELECT COUNT(*) FROM big_a, big_b WHERE a_k = b_k"

# Cluster observability plane: the stitched Chrome trace must carry
# events from the coordinator AND both shard processes (pid rows 0/1/2),
# the federated exposition must label per-shard samples, and the
# structured query log must have recorded the trap's re-optimization.
./build/examples/popdb_client --port "$COORD_PORT" \
    --trace-dump "$SMOKE_DIR/cluster-trace.json"
grep -q '"pid":1' "$SMOKE_DIR/cluster-trace.json" \
    || { echo "stitched trace is missing shard 0's timeline"; exit 1; }
grep -q '"pid":2' "$SMOKE_DIR/cluster-trace.json" \
    || { echo "stitched trace is missing shard 1's timeline"; exit 1; }
grep -q '"subplan_execute"' "$SMOKE_DIR/cluster-trace.json" \
    || { echo "stitched trace has no shard execution spans"; exit 1; }
./build/examples/popdb_client --port "$COORD_PORT" --cluster-metrics \
    > "$SMOKE_DIR/cluster-metrics.txt"
grep -q 'shard="1"' "$SMOKE_DIR/cluster-metrics.txt" \
    || { echo "federated metrics are missing shard labels"; exit 1; }
grep -q 'popdb_dist_shard_latency_ms' "$SMOKE_DIR/cluster-metrics.txt" \
    || { echo "federated metrics are missing the per-shard latency family"; exit 1; }
./build/examples/popdb_client --port "$COORD_PORT" --log \
    > "$SMOKE_DIR/query-log.json"
grep -q '"reopts":[1-9]' "$SMOKE_DIR/query-log.json" \
    || { echo "query log did not record the trap re-optimization"; exit 1; }
grep -q '"distributed":true' "$SMOKE_DIR/query-log.json" \
    || { echo "query log did not mark the scatter-gather queries"; exit 1; }
echo "cluster observability smoke passed (trace + metrics + query log)"

# Kill shard 1 mid-query: the stalled scan takes seconds, the kill -9
# lands mid-stream, and the client must get a clean error — not a hang.
./build/examples/popdb_client --port "$COORD_PORT" \
    "SELECT o_id, o_subclass FROM orders" > "$SMOKE_DIR/killed.out" 2>&1 &
KILLED_CLIENT_PID=$!
sleep 0.5
kill -9 "$SHARD1_PID"
KILLED_RC=0
wait "$KILLED_CLIENT_PID" || KILLED_RC=$?
[[ "$KILLED_RC" != "0" ]] \
    || { echo "query against a killed shard unexpectedly succeeded"; exit 1; }
grep -qi "unavailable\|shard" "$SMOKE_DIR/killed.out" \
    || { echo "shard-kill error not surfaced:"; cat "$SMOKE_DIR/killed.out"; exit 1; }
echo "shard kill surfaced cleanly: $(head -1 "$SMOKE_DIR/killed.out")"

# The coordinator survives the shard death: local-fallback queries still
# answer on the same server.
./build/examples/popdb_client --port "$COORD_PORT" \
    "SELECT COUNT(*) FROM big_a WHERE a_v < 100"

kill "$COORD_PID" "$SHARD0_PID"
wait "$COORD_PID" "$SHARD0_PID" 2>/dev/null || true
wait "$SHARD1_PID" 2>/dev/null || true

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== TSan stage skipped (--skip-tsan) ==="
else
  echo "=== ThreadSanitizer build + concurrency tests ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPOPDB_SANITIZE=thread
  cmake --build build-tsan -j \
        --target runtime_test concurrency_test observability_test \
        morsel_test parallel_equivalence_test plan_cache_test \
        plan_cache_equivalence_test batch_differential_test \
        reopt_differential_test fuzz_test txn_test \
        parallel_stress_test net_test dist_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/runtime_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/concurrency_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/observability_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/morsel_test
  TSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-tsan/tests/parallel_equivalence_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/plan_cache_test
  TSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-tsan/tests/plan_cache_equivalence_test
  # Row-vs-vectorized differential oracle (ctest label "batch") in light
  # mode: the full batch-size sweep is release-only.
  TSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-tsan/tests/batch_differential_test
  # Incremental-vs-full-DP re-optimization oracle (ctest label "reopt")
  # in light mode, plus its randomized perturbation leg from fuzz_test.
  TSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-tsan/tests/reopt_differential_test
  TSAN_OPTIONS="halt_on_error=1" \
      ./build-tsan/tests/fuzz_test --gtest_filter='*IncrementalReopt*'
  # Write path (ctest label "txn"): copy-on-write snapshot hammer with
  # concurrent writers/readers plus the dop-1-vs-4 differential leg.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/txn_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_stress_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/dist_test
fi

if [[ "$SKIP_UBSAN" == "1" ]]; then
  echo "=== UBSan stage skipped (--skip-ubsan) ==="
else
  echo "=== UndefinedBehaviorSanitizer build + observability/runtime tests ==="
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPOPDB_SANITIZE=undefined
  cmake --build build-ubsan -j \
        --target runtime_test observability_test operator_test pop_test \
        morsel_test parallel_equivalence_test plan_cache_test \
        plan_cache_equivalence_test batch_differential_test \
        reopt_differential_test fuzz_test txn_test net_test dist_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/observability_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/runtime_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/operator_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/pop_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/morsel_test
  UBSAN_OPTIONS="halt_on_error=1" \
      ./build-ubsan/tests/parallel_equivalence_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/plan_cache_test
  UBSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-ubsan/tests/plan_cache_equivalence_test
  # Batch-boundary CHECK math (floor/truncation) is exactly what UBSan
  # watches for; run the differential oracle's full light corpus here too.
  UBSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-ubsan/tests/batch_differential_test
  # Memo invalidation is bit-twiddling over table sets (low_bit loops,
  # superset masks) — UBSan's shift/overflow checks cover exactly that.
  UBSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-ubsan/tests/reopt_differential_test
  UBSAN_OPTIONS="halt_on_error=1" \
      ./build-ubsan/tests/fuzz_test --gtest_filter='*IncrementalReopt*'
  # StatsDelta histogram/NDV fold arithmetic and chunked COW row-version
  # math are integer-heavy — UBSan's overflow checks cover them.
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/txn_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/net_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/dist_test
fi

echo "=== ci.sh: all stages passed ==="
