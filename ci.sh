#!/usr/bin/env bash
# CI entry point: release build + full test suite + a loopback network
# smoke (popdb_server driven by the scripted popdb_client session), then a
# ThreadSanitizer build that hammers the concurrent pieces (runtime query
# service, network front end, morsel parallelism, shared feedback stores,
# parallel executors, metrics registry, span tracer), then a UBSan build
# over the tracing/metrics/runtime/parallel/network suites.
#
# The release ctest runs everything including tests labeled "slow"
# (parallel_stress_test); use `ctest -L fast` locally for the quick loop.
# The TSan stage runs the parallel- and plan-cache-equivalence suites in
# light mode (POPDB_EQUIV_LIGHT=1) — the full corpus sweeps are
# release-only.
#
# Usage: ./ci.sh [--skip-tsan] [--skip-ubsan]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_TSAN=0
SKIP_UBSAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-ubsan" ]] && SKIP_UBSAN=1
done

echo "=== release build + full ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== network smoke: popdb_server + scripted client on loopback ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./build/examples/popdb_server toy --quiet --allow-shutdown \
    --port-file "$SMOKE_DIR/port" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE_DIR/port" ]] || { echo "server never wrote its port file"; exit 1; }
./build/examples/popdb_client --port-file "$SMOKE_DIR/port" --smoke
# The smoke script ends with a wire `shutdown` request; the server must
# exit 0 on its own (clean shutdown, no leaked threads keeping it alive).
wait "$SERVER_PID"

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== TSan stage skipped (--skip-tsan) ==="
else
  echo "=== ThreadSanitizer build + concurrency tests ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPOPDB_SANITIZE=thread
  cmake --build build-tsan -j \
        --target runtime_test concurrency_test observability_test \
        morsel_test parallel_equivalence_test plan_cache_test \
        plan_cache_equivalence_test parallel_stress_test net_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/runtime_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/concurrency_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/observability_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/morsel_test
  TSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-tsan/tests/parallel_equivalence_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/plan_cache_test
  TSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-tsan/tests/plan_cache_equivalence_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_stress_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_test
fi

if [[ "$SKIP_UBSAN" == "1" ]]; then
  echo "=== UBSan stage skipped (--skip-ubsan) ==="
else
  echo "=== UndefinedBehaviorSanitizer build + observability/runtime tests ==="
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPOPDB_SANITIZE=undefined
  cmake --build build-ubsan -j \
        --target runtime_test observability_test operator_test pop_test \
        morsel_test parallel_equivalence_test plan_cache_test \
        plan_cache_equivalence_test net_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/observability_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/runtime_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/operator_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/pop_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/morsel_test
  UBSAN_OPTIONS="halt_on_error=1" \
      ./build-ubsan/tests/parallel_equivalence_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/plan_cache_test
  UBSAN_OPTIONS="halt_on_error=1" POPDB_EQUIV_LIGHT=1 \
      ./build-ubsan/tests/plan_cache_equivalence_test
  UBSAN_OPTIONS="halt_on_error=1" ./build-ubsan/tests/net_test
fi

echo "=== ci.sh: all stages passed ==="
