#!/usr/bin/env bash
# CI entry point: release build + full test suite, then a ThreadSanitizer
# build that hammers the concurrent pieces (runtime query service, shared
# feedback stores, parallel executors).
#
# Usage: ./ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "=== release build + full ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== TSan stage skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPOPDB_SANITIZE=thread
cmake --build build-tsan -j --target runtime_test concurrency_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/runtime_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/concurrency_test

echo "=== ci.sh: all stages passed ==="
